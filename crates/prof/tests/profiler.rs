//! Acceptance tests for the profiler's verdicts on the course modules —
//! the diagnoses of `docs/performance-model.md`, asserted rather than
//! rendered.

use pdc_datagen::uniform_points;
use pdc_modules::module2::{distance_matrix_rank, Access};
use pdc_modules::module6::{stencil_rank, HaloVariant};
use pdc_mpi::{Op, WorldConfig};
use pdc_prof::clinic::{imbalanced_stencil, ClinicConfig};
use pdc_prof::{profile_world, render, Bound, WaitKind};

/// Module 2's verdict at full node occupancy: 32 ranks share one 100 GB/s
/// bus, so the row scan is bandwidth-bound on the *node* ceiling and each
/// rank's effective bandwidth collapses to `node_mem_bw / 32` — the bus
/// saturation story of docs/performance-model.md.
#[test]
fn module2_row_scan_saturates_the_node_bus_at_32_ranks() {
    let points = uniform_points(1024, 8, 0.0, 100.0, 42);
    let profiled = profile_world(WorldConfig::new(32), move |comm| {
        distance_matrix_rank(comm, &points, Access::RowWise)
    })
    .expect("module2 profiles");
    let p = &profiled.profile;
    assert_eq!(p.placement.nodes_used(), 1, "32 ranks must fit one node");

    let k = p.kernel("row_scan").expect("row_scan kernel verdict");
    assert_eq!(
        k.bound,
        Bound::NodeBandwidth,
        "row scan must be bandwidth-bound on the saturated node bus: {k:?}"
    );
    let per_rank = p.machine.node_mem_bw / 32.0;
    assert!(
        (k.ceiling - per_rank).abs() < 1e-3 * per_rank,
        "ceiling {} vs node_mem_bw/32 = {per_rank}",
        k.ceiling
    );
    assert!(
        (k.effective_bandwidth - per_rank).abs() < 0.1 * per_rank,
        "effective bandwidth {} should sit at ~node_mem_bw/32 = {per_rank}",
        k.effective_bandwidth
    );
}

/// The same kernel on a single rank has the whole bus to itself: the
/// binding ceiling is the core's own 12 GB/s, not a saturated node share.
#[test]
fn module2_row_scan_is_core_bound_when_alone() {
    let points = uniform_points(1024, 8, 0.0, 100.0, 42);
    let profiled = profile_world(WorldConfig::new(1), move |comm| {
        distance_matrix_rank(comm, &points, Access::RowWise)
    })
    .expect("module2 profiles");
    let k = profiled.profile.kernel("row_scan").expect("row_scan");
    assert_eq!(k.bound, Bound::CoreBandwidth, "{k:?}");
    let core = profiled.profile.machine.core_mem_bw;
    assert!((k.effective_bandwidth - core).abs() < 0.1 * core);
}

/// The imbalanced-stencil clinic: the top wait-state must be a
/// late-sender pointing at the deliberately slow rank.
#[test]
fn clinic_top_wait_state_is_late_sender_at_the_slow_rank() {
    let cfg = ClinicConfig::default();
    let profiled = imbalanced_stencil(&cfg).expect("clinic runs");
    let p = &profiled.profile;
    let top = p.top_wait_state().expect("clinic produces wait states");
    assert_eq!(
        top.kind,
        WaitKind::LateSender,
        "top wait-state must be late-sender: {top:?}"
    );
    assert_eq!(
        top.culprit, cfg.slow_rank,
        "late-sender culprit must be the slow rank: {top:?}"
    );
    assert!(top.total_wait > 0.0 && top.occurrences > 0);
    // The render names the diagnosis too.
    let text = render(p);
    assert!(text.contains("late-sender"), "render lists the wait state");
    assert!(
        text.contains(&format!("r{}", cfg.slow_rank)),
        "render names the culprit"
    );
}

/// The slow rank's neighbours spend their halo phase blocked; the slow
/// rank itself dominates the critical path's sweep blame.
#[test]
fn clinic_critical_path_blames_the_sweep() {
    let profiled = imbalanced_stencil(&ClinicConfig::default()).expect("clinic runs");
    let p = &profiled.profile;
    let sweep = p
        .critical_path
        .blame
        .iter()
        .find(|b| b.phase == "sweep")
        .expect("sweep on the critical path");
    assert!(
        sweep.percent > 50.0,
        "the inflated sweep must dominate the critical path: {:?}",
        p.critical_path.blame
    );
}

/// Module 6 under the profiler: the halo_wait phase exists on every rank
/// and the boundary-rank asymmetry shows up as p2p wait states.
#[test]
fn module6_halo_wait_phase_is_visible() {
    let profiled = profile_world(WorldConfig::new(8), move |comm| {
        let u = stencil_rank(comm, 2048, 10, HaloVariant::BlockingFirst)?;
        let local: f64 = u.iter().sum();
        comm.reduce(&[local], Op::Sum, 0)
    })
    .expect("module6 profiles");
    let p = &profiled.profile;
    let halo = p
        .phases
        .iter()
        .find(|ph| ph.phase == "halo_wait")
        .expect("halo_wait phase aggregated");
    assert_eq!(halo.ranks, 8, "every rank enters halo_wait");
    assert!(halo.wait_time > 0.0, "halo receives block: {halo:?}");
    let compute = p
        .phases
        .iter()
        .find(|ph| ph.phase == "compute")
        .expect("compute phase aggregated");
    assert!(compute.compute_time > 0.0);
    assert!(
        p.wait_states
            .iter()
            .any(|w| w.kind == WaitKind::LateSender || w.kind == WaitKind::LateReceiver),
        "halo traffic produces p2p wait states: {:?}",
        p.wait_states
    );
}

/// The profile is serialisable and structurally round-trips.
#[test]
fn profile_serialises_to_json() {
    let profiled = imbalanced_stencil(&ClinicConfig {
        ranks: 4,
        iters: 4,
        ..ClinicConfig::default()
    })
    .expect("clinic runs");
    let json = profiled.profile.to_json();
    let v: serde::Value = serde_json::from_str(&json).expect("parses");
    let makespan = v
        .get("makespan")
        .and_then(|m| m.as_f64())
        .expect("makespan");
    assert!(makespan > 0.0);
    assert_eq!(v.get("ranks").and_then(|r| r.as_f64()), Some(4.0));
}
