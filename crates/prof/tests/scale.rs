//! Scale acceptance: the virtual-rank backend pushes the profiler's
//! verdicts to cluster scales no thread-per-rank run could reach. A
//! 4096-rank Module 2 sweep must complete on a CI container and keep the
//! node-bandwidth diagnosis of `docs/performance-model.md`: with 32 ranks
//! sharing each node bus, effective bandwidth per rank collapses to
//! `node_mem_bw / ranks_per_node`.

use pdc_datagen::uniform_points;
use pdc_modules::module2::{distance_matrix_rank, Access};
use pdc_mpi::WorldConfig;
use pdc_prof::{profile_world, Bound};

/// 4096 ranks on 128 simulated nodes (32 ranks per node), multiplexed
/// onto a small worker pool. The strong-scaling shape of the paper's
/// memory-bound module survives the three-orders-of-magnitude jump.
#[test]
fn module2_at_4096_ranks_stays_node_bandwidth_bound() {
    let points = uniform_points(4096, 8, 0.0, 100.0, 42);
    let cfg = WorldConfig::virtual_ranks(4096, 8)
        .with_sched_seed(0)
        .on_nodes(128);
    let ranks_per_node = cfg.machine.cores_per_node as f64;
    assert_eq!(ranks_per_node, 32.0, "4096 ranks over 128 nodes");
    let node_bw = cfg.machine.node_mem_bw;
    let profiled = profile_world(cfg, move |comm| {
        distance_matrix_rank(comm, &points, Access::RowWise)
    })
    .expect("4096-rank module2 completes under virtual ranks");
    let p = &profiled.profile;
    assert_eq!(p.placement.nodes_used(), 128);

    let k = p.kernel("row_scan").expect("row_scan kernel verdict");
    assert_eq!(
        k.bound,
        Bound::NodeBandwidth,
        "row scan stays bandwidth-bound on the saturated node bus: {k:?}"
    );
    let per_rank = node_bw / ranks_per_node;
    assert!(
        (k.ceiling - per_rank).abs() < 1e-3 * per_rank,
        "ceiling {} vs node_mem_bw/{ranks_per_node} = {per_rank}",
        k.ceiling
    );
    assert!(
        (k.effective_bandwidth - per_rank).abs() < 0.1 * per_rank,
        "effective bandwidth {} should sit at ~{per_rank}",
        k.effective_bandwidth
    );
}
