//! Property tests for the cache simulator: counter sanity, the LRU stack
//! (inclusion) property over associativity, and reuse guarantees.

use pdc_cachesim::{Cache, CacheConfig, Hierarchy, Tracer};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..1 << 16, any::<bool>()), 1..800)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counters_are_consistent(trace in trace_strategy()) {
        let mut c = Cache::new(CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 });
        for &(addr, write) in &trace {
            c.access_line(addr, write);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, trace.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        prop_assert!(s.writebacks <= s.misses, "only misses can evict");
        prop_assert!((0.0..=1.0).contains(&s.miss_rate()));
    }

    #[test]
    fn more_ways_never_increase_misses(trace in trace_strategy()) {
        // The LRU stack property per set: with the set count held fixed,
        // doubling associativity can only remove misses.
        let sets = 16;
        let line = 64;
        let mut narrow = Cache::new(CacheConfig {
            size_bytes: sets * line * 2,
            line_bytes: line,
            ways: 2,
        });
        let mut wide = Cache::new(CacheConfig {
            size_bytes: sets * line * 8,
            line_bytes: line,
            ways: 8,
        });
        for &(addr, write) in &trace {
            narrow.access_line(addr, write);
            wide.access_line(addr, write);
        }
        prop_assert!(
            wide.stats().misses <= narrow.stats().misses,
            "LRU inclusion violated: {} > {}",
            wide.stats().misses,
            narrow.stats().misses
        );
    }

    #[test]
    fn small_working_sets_fully_reuse(
        n_lines in 1usize..64,  // at most 4 KiB of 64 B lines (fits 32 KiB L1)
        passes in 2usize..5,
    ) {
        let mut h = Hierarchy::typical();
        for _ in 0..passes {
            for i in 0..n_lines {
                h.access_line(i as u64 * 64, false);
            }
        }
        let r = h.report();
        prop_assert_eq!(r.l1.misses, n_lines as u64, "only cold misses");
        prop_assert_eq!(r.dram_accesses, n_lines as u64);
    }

    #[test]
    fn tracer_line_splitting_is_exact(
        offsets in proptest::collection::vec((0usize..500, 1usize..32), 1..100),
    ) {
        let mut t = Tracer::new(Hierarchy::typical());
        let a = t.alloc(1024, 1);
        let mut expected = 0u64;
        for &(off, len) in &offsets {
            let addr = a.addr(off.min(1024 - len));
            t.read(addr, len);
            let first = addr / 64;
            let last = (addr + len as u64 - 1) / 64;
            expected += last - first + 1;
        }
        prop_assert_eq!(t.report().l1.accesses, expected);
    }
}
