//! Address-trace front end: virtual allocations and multi-byte accesses.
//!
//! Kernels that want their memory behaviour measured allocate [`VArray`]s
//! from a [`Tracer`] and funnel every logical read/write through it. The
//! tracer splits multi-byte accesses into line-granular cache accesses, so
//! an 8-byte `f64` read that straddles a line boundary costs two accesses,
//! exactly as hardware would.

use crate::cache::{Hierarchy, HierarchyReport};

/// A virtual allocation: base address + element size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VArray {
    base: u64,
    elem_bytes: u64,
    len: u64,
}

impl VArray {
    /// Address of element `i`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices — catching stray kernel indexing in
    /// tests is a feature.
    pub fn addr(&self, i: usize) -> u64 {
        assert!(
            (i as u64) < self.len,
            "index {i} out of bounds ({})",
            self.len
        );
        self.base + i as u64 * self.elem_bytes
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> usize {
        self.elem_bytes as usize
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Trace front end over a cache hierarchy.
#[derive(Debug, Clone)]
pub struct Tracer {
    hierarchy: Hierarchy,
    next_base: u64,
}

impl Tracer {
    /// Wrap a hierarchy; allocations start at a page-aligned base.
    pub fn new(hierarchy: Hierarchy) -> Self {
        Self {
            hierarchy,
            next_base: 4096,
        }
    }

    /// Reserve a virtual array of `len` elements of `elem_bytes` each.
    /// Allocations are line-aligned and never overlap.
    pub fn alloc(&mut self, len: usize, elem_bytes: usize) -> VArray {
        assert!(elem_bytes > 0, "elements must have a size");
        let line = self.hierarchy.l1.config().line_bytes as u64;
        let base = self.next_base;
        let bytes = (len as u64 * elem_bytes as u64).max(1);
        self.next_base = (base + bytes).div_ceil(line) * line + line;
        VArray {
            base,
            elem_bytes: elem_bytes as u64,
            len: len as u64,
        }
    }

    fn touch(&mut self, addr: u64, bytes: usize, write: bool) {
        let line = self.hierarchy.l1.config().line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) as u64 - 1) / line;
        for l in first..=last {
            self.hierarchy.access_line(l * line, write);
        }
    }

    /// Record a read of `bytes` bytes at `addr`.
    pub fn read(&mut self, addr: u64, bytes: usize) {
        self.touch(addr, bytes, false);
    }

    /// Record a write of `bytes` bytes at `addr`.
    pub fn write(&mut self, addr: u64, bytes: usize) {
        self.touch(addr, bytes, true);
    }

    /// Read element `i` of `a`.
    pub fn read_elem(&mut self, a: &VArray, i: usize) {
        self.read(a.addr(i), a.elem_bytes());
    }

    /// Write element `i` of `a`.
    pub fn write_elem(&mut self, a: &VArray, i: usize) {
        self.write(a.addr(i), a.elem_bytes());
    }

    /// Counters so far.
    pub fn report(&self) -> HierarchyReport {
        self.hierarchy.report()
    }

    /// Reset the hierarchy (allocations are kept).
    pub fn reset_counters(&mut self) {
        self.hierarchy.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, Hierarchy};

    fn tracer() -> Tracer {
        Tracer::new(Hierarchy::typical())
    }

    #[test]
    fn allocations_do_not_overlap_and_are_line_aligned() {
        let mut t = tracer();
        let a = t.alloc(100, 8);
        let b = t.alloc(100, 8);
        assert!(a.addr(99) + 8 <= b.addr(0));
        assert_eq!(b.addr(0) % 64, 0);
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut t = tracer();
        let a = t.alloc(800, 8); // 100 lines of 8 f64s
        for i in 0..800 {
            t.read_elem(&a, i);
        }
        let r = t.report();
        assert_eq!(r.l1.accesses, 800);
        assert_eq!(r.l1.misses, 100, "one cold miss per 64-byte line");
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut t = tracer();
        let a = t.alloc(64, 1);
        // 8-byte read at offset 60 crosses the line boundary.
        t.read(a.addr(60), 8);
        assert_eq!(t.report().l1.accesses, 2);
    }

    #[test]
    fn small_working_set_reuses_lines() {
        let mut t = tracer();
        let a = t.alloc(512, 8); // 4 KiB fits L1 easily
        for _ in 0..10 {
            for i in 0..512 {
                t.read_elem(&a, i);
            }
        }
        let r = t.report();
        assert_eq!(r.l1.misses, 64, "only cold misses");
        assert!(r.l1.miss_rate() < 0.02);
    }

    #[test]
    fn large_working_set_spills_to_l2_and_dram() {
        // 8 MiB working set exceeds the 1 MiB L2.
        let mut t = Tracer::new(Hierarchy::new(CacheConfig::l1d(), CacheConfig::l2()));
        let n = 1 << 20; // 1M f64s = 8 MiB
        let a = t.alloc(n, 8);
        for _ in 0..2 {
            for i in (0..n).step_by(8) {
                t.read_elem(&a, i); // one access per line
            }
        }
        let r = t.report();
        assert!(r.l2.miss_rate() > 0.9, "L2 thrashes: {:?}", r.l2);
        assert!(r.dram_accesses > (n / 8) as u64);
    }

    #[test]
    fn writes_mark_lines_dirty_and_cause_writebacks() {
        let mut t = tracer();
        let n = 1 << 16; // 64K elements * 8B = 512 KiB > L1
        let a = t.alloc(n, 8);
        for i in 0..n {
            t.write_elem(&a, i);
        }
        // Second pass evicts dirty lines.
        for i in 0..n {
            t.write_elem(&a, i);
        }
        assert!(t.report().l1.writebacks > 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_is_caught() {
        let mut t = tracer();
        let a = t.alloc(4, 8);
        t.read_elem(&a, 4);
    }

    #[test]
    fn reset_counters_keeps_allocator_position() {
        let mut t = tracer();
        let a = t.alloc(8, 8);
        t.read_elem(&a, 0);
        t.reset_counters();
        assert_eq!(t.report().l1.accesses, 0);
        let b = t.alloc(8, 8);
        assert!(b.addr(0) > a.addr(7), "allocator did not rewind");
    }
}
