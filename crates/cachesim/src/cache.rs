//! Set-associative LRU caches and a two-level hierarchy.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64 B-line L1D (typical Intel/AMD).
    pub fn l1d() -> Self {
        Self {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// A 1 MiB, 16-way, 64 B-line L2.
    pub fn l2() -> Self {
        Self {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `line_bytes * ways`, or non-power-of-two line size).
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "associativity must be positive");
        let per_way = self.line_bytes * self.ways;
        assert!(
            self.size_bytes.is_multiple_of(per_way) && self.size_bytes >= per_way,
            "cache of {} bytes does not divide into {}-way sets of {}-byte lines",
            self.size_bytes,
            self.ways,
            self.line_bytes
        );
        self.size_bytes / per_way
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Line-granular accesses that reached this level.
    pub accesses: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl LevelStats {
    /// Miss rate (0 when the level saw no traffic).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Eviction policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Evict the least recently used line (the default).
    Lru,
    /// Evict the oldest-installed line regardless of use.
    Fifo,
    /// Evict a pseudo-random way (deterministic from the seed).
    Random(u64),
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU timestamp: larger = more recently used.
    stamp: u64,
    /// Installation timestamp (FIFO ordering).
    installed: u64,
}

/// One set-associative, LRU, write-allocate/write-back cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: LevelStats,
    policy: Replacement,
    rng_state: u64,
}

/// Outcome of a line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty line was evicted to make room.
    pub wrote_back: bool,
}

impl Cache {
    /// Build an empty LRU cache.
    pub fn new(cfg: CacheConfig) -> Self {
        Self::with_policy(cfg, Replacement::Lru)
    }

    /// Build an empty cache with an explicit replacement policy.
    pub fn with_policy(cfg: CacheConfig, policy: Replacement) -> Self {
        let n_sets = cfg.sets();
        let rng_state = match policy {
            Replacement::Random(seed) => seed | 1,
            _ => 1,
        };
        Self {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways); n_sets],
            tick: 0,
            stats: LevelStats::default(),
            policy,
            rng_state,
        }
    }

    /// Pick the victim index in a full set under the configured policy.
    fn victim(&mut self, set_idx: usize) -> usize {
        let set = &self.sets[set_idx];
        match self.policy {
            Replacement::Lru => set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .expect("set is full, hence non-empty"),
            Replacement::Fifo => set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.installed)
                .map(|(i, _)| i)
                .expect("set is full, hence non-empty"),
            Replacement::Random(_) => {
                // xorshift64*
                let mut x = self.rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng_state = x;
                (x.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % set.len()
            }
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    fn set_and_tag(&self, line_addr: u64) -> (usize, u64) {
        let n_sets = self.sets.len() as u64;
        ((line_addr % n_sets) as usize, line_addr / n_sets)
    }

    /// Access the line containing `addr`; `write` marks it dirty.
    pub fn access_line(&mut self, addr: u64, write: bool) -> LineOutcome {
        let line_addr = addr / self.cfg.line_bytes as u64;
        let (set_idx, tag) = self.set_and_tag(line_addr);
        self.tick += 1;
        self.stats.accesses += 1;
        let tick = self.tick;
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.tag == tag) {
            line.stamp = tick;
            line.dirty |= write;
            return LineOutcome {
                hit: true,
                wrote_back: false,
            };
        }
        // Miss: allocate, evicting per policy if the set is full.
        self.stats.misses += 1;
        let mut wrote_back = false;
        if self.sets[set_idx].len() == self.cfg.ways {
            let v = self.victim(set_idx);
            let victim = self.sets[set_idx].swap_remove(v);
            if victim.dirty {
                self.stats.writebacks += 1;
                wrote_back = true;
            }
        }
        let tick = self.tick;
        self.sets[set_idx].push(Line {
            tag,
            dirty: write,
            stamp: tick,
            installed: tick,
        });
        LineOutcome {
            hit: false,
            wrote_back,
        }
    }

    /// Reset contents and counters.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.tick = 0;
        self.stats = LevelStats::default();
    }

    /// Install the line containing `addr` without touching the demand
    /// counters (used by the prefetcher). Returns `true` if the line was
    /// absent and had to be brought in.
    pub fn install_silent(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.cfg.line_bytes as u64;
        let (set_idx, tag) = self.set_and_tag(line_addr);
        self.tick += 1;
        let ways = self.cfg.ways;
        let tick = self.tick;
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.tag == tag) {
            line.stamp = tick;
            return false;
        }
        if self.sets[set_idx].len() == ways {
            let v = self.victim(set_idx);
            let victim = self.sets[set_idx].swap_remove(v);
            if victim.dirty {
                self.stats.writebacks += 1;
            }
        }
        let tick = self.tick;
        self.sets[set_idx].push(Line {
            tag,
            dirty: false,
            stamp: tick,
            installed: tick,
        });
        true
    }
}

/// An inclusive-enough two-level hierarchy: L1 backed by L2 backed by DRAM.
/// L2 is consulted only on L1 misses; L1 writebacks are installed in L2.
///
/// An optional **next-line prefetcher** can be enabled: on every L1 miss it
/// pulls the following line into L1 (and L2) without counting the prefetch
/// as a demand access — the standard hardware assist that makes streaming
/// kernels look better than their raw reuse distance suggests.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// First level.
    pub l1: Cache,
    /// Second level.
    pub l2: Cache,
    dram_accesses: u64,
    prefetch_next_line: bool,
    prefetches_issued: u64,
    /// Line the stream detector expects next (tagged prefetching).
    next_expected: Option<u64>,
}

/// Counters of a hierarchy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyReport {
    /// L1 counters.
    pub l1: LevelStats,
    /// L2 counters.
    pub l2: LevelStats,
    /// Lines fetched from DRAM (L2 misses).
    pub dram_accesses: u64,
}

impl HierarchyReport {
    /// Bytes moved between L2 and DRAM, assuming `line_bytes`-sized lines.
    pub fn dram_bytes(&self, line_bytes: usize) -> u64 {
        self.dram_accesses * line_bytes as u64
    }
}

impl Hierarchy {
    /// Build from explicit configs.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        Self {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            dram_accesses: 0,
            prefetch_next_line: false,
            prefetches_issued: 0,
            next_expected: None,
        }
    }

    /// Enable the next-line prefetcher (builder style).
    pub fn with_next_line_prefetch(mut self) -> Self {
        self.prefetch_next_line = true;
        self
    }

    /// Prefetches issued so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// The default geometry: 32 KiB L1, 1 MiB L2.
    pub fn typical() -> Self {
        Self::new(CacheConfig::l1d(), CacheConfig::l2())
    }

    /// Access the line containing `addr`.
    pub fn access_line(&mut self, addr: u64, write: bool) {
        let line = self.l1.config().line_bytes as u64;
        let line_addr = addr / line;
        let o1 = self.l1.access_line(addr, write);
        if !o1.hit {
            // L1 writeback traffic goes to L2 (counted inside l1 stats; the
            // line is assumed present or re-installed in L2 — we skip
            // modelling the writeback address since it does not affect miss
            // ordering).
            let o2 = self.l2.access_line(addr, false);
            if !o2.hit {
                self.dram_accesses += 1;
            }
        }
        // Tagged next-line prefetching: trigger on a demand miss, and keep
        // the stream alive when the demand access lands on the line we
        // prefetched last (otherwise a stream would stall every other line).
        if self.prefetch_next_line && (!o1.hit || self.next_expected == Some(line_addr)) {
            let next = (line_addr + 1) * line;
            self.prefetches_issued += 1;
            self.next_expected = Some(line_addr + 1);
            if self.l1.install_silent(next) && self.l2.install_silent(next) {
                self.dram_accesses += 1;
            }
        }
    }

    /// Counters so far.
    pub fn report(&self) -> HierarchyReport {
        HierarchyReport {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            dram_accesses: self.dram_accesses,
        }
    }

    /// Reset contents and counters.
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.dram_accesses = 0;
        self.prefetches_issued = 0;
        self.next_expected = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(size: usize, line: usize, ways: usize) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: size,
            line_bytes: line,
            ways,
        })
    }

    #[test]
    fn geometry_derives_sets() {
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn inconsistent_geometry_is_rejected() {
        let _ = tiny(100, 64, 2).config().sets();
    }

    #[test]
    fn repeated_access_hits_after_cold_miss() {
        let mut c = tiny(1024, 64, 2);
        assert!(!c.access_line(0, false).hit, "cold miss");
        assert!(c.access_line(0, false).hit);
        assert!(c.access_line(63, false).hit, "same line");
        assert!(!c.access_line(64, false).hit, "next line is cold");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn fifo_evicts_by_installation_not_use() {
        // 2-way set; keep touching line 0 — LRU protects it, FIFO does not.
        let line = |i: u64| i * 8 * 64; // all map to set 0 (8 sets)
        let mut lru = Cache::with_policy(
            CacheConfig {
                size_bytes: 1024,
                line_bytes: 64,
                ways: 2,
            },
            Replacement::Lru,
        );
        let mut fifo = Cache::with_policy(
            CacheConfig {
                size_bytes: 1024,
                line_bytes: 64,
                ways: 2,
            },
            Replacement::Fifo,
        );
        for c in [&mut lru, &mut fifo] {
            c.access_line(line(0), false); // install 0
            c.access_line(line(1), false); // install 1
            c.access_line(line(0), false); // reuse 0
            c.access_line(line(2), false); // evict: LRU kills 1, FIFO kills 0
        }
        assert!(lru.access_line(line(0), false).hit, "LRU kept the hot line");
        assert!(
            !fifo.access_line(line(0), false).hit,
            "FIFO evicted the hot line"
        );
    }

    #[test]
    fn random_replacement_is_seed_deterministic() {
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        };
        let run = |seed: u64| {
            let mut c = Cache::with_policy(cfg, Replacement::Random(seed));
            for i in 0..200u64 {
                c.access_line((i % 24) * 64 * 8, false);
            }
            c.stats().misses
        };
        assert_eq!(run(7), run(7), "same seed, same misses");
    }

    #[test]
    fn lru_beats_fifo_on_hot_loop_workloads() {
        // A hot line amid a stream: LRU's reuse protection must win.
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        };
        let mut lru = Cache::with_policy(cfg, Replacement::Lru);
        let mut fifo = Cache::with_policy(cfg, Replacement::Fifo);
        for c in [&mut lru, &mut fifo] {
            for i in 0..300u64 {
                c.access_line(0, false); // hot
                c.access_line(((i % 7) + 1) * 64 * 8, false); // conflict stream
            }
        }
        assert!(
            lru.stats().misses < fifo.stats().misses,
            "LRU {} vs FIFO {}",
            lru.stats().misses,
            fifo.stats().misses
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2 ways, 1 set of interest: lines 0, 8, 16 map to set 0
        // (8 sets of 64B lines, addresses 0, 8*64, 16*64).
        let mut c = tiny(1024, 64, 2);
        let line = |i: u64| i * 8 * 64; // stride of 8 lines = sets
        assert!(!c.access_line(line(0), false).hit);
        assert!(!c.access_line(line(1), false).hit);
        // Touch line 0 so line 1 becomes LRU.
        assert!(c.access_line(line(0), false).hit);
        // Line 2 evicts line 1.
        assert!(!c.access_line(line(2), false).hit);
        assert!(c.access_line(line(0), false).hit, "line 0 survived");
        assert!(!c.access_line(line(1), false).hit, "line 1 was evicted");
    }

    #[test]
    fn dirty_eviction_counts_a_writeback() {
        let mut c = tiny(64, 64, 1); // one line total
        c.access_line(0, true); // dirty
        let out = c.access_line(64, false); // evicts dirty line
        assert!(out.wrote_back);
        assert_eq!(c.stats().writebacks, 1);
        let out = c.access_line(128, false); // evicts clean line
        assert!(!out.wrote_back);
    }

    #[test]
    fn higher_associativity_removes_conflict_misses() {
        // Two addresses that conflict in a direct-mapped cache coexist in a
        // 2-way one.
        let mut direct = tiny(512, 64, 1); // 8 sets
        let a = 0u64;
        let b = 8 * 64; // same set as a
        for _ in 0..10 {
            direct.access_line(a, false);
            direct.access_line(b, false);
        }
        assert_eq!(direct.stats().misses, 20, "ping-pong conflict");

        let mut two_way = tiny(512, 64, 2); // 4 sets; a,b still same set
        for _ in 0..10 {
            two_way.access_line(a, false);
            two_way.access_line(b, false);
        }
        assert_eq!(two_way.stats().misses, 2, "only cold misses remain");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(1024, 64, 2); // 16 lines capacity
                                       // Stream 64 distinct lines twice with LRU: zero reuse survives.
        for _ in 0..2 {
            for i in 0..64u64 {
                c.access_line(i * 64, false);
            }
        }
        assert_eq!(c.stats().miss_rate(), 1.0);
    }

    #[test]
    fn working_set_that_fits_is_reused() {
        let mut c = tiny(1024, 64, 2); // 16 lines
        for _ in 0..4 {
            for i in 0..8u64 {
                c.access_line(i * 64, false);
            }
        }
        // 8 cold misses, 24 hits.
        assert_eq!(c.stats().misses, 8);
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_filters_traffic_to_l2() {
        let mut h = Hierarchy::typical();
        for _ in 0..100 {
            h.access_line(0, false);
        }
        let r = h.report();
        assert_eq!(r.l1.accesses, 100);
        assert_eq!(r.l1.misses, 1);
        assert_eq!(r.l2.accesses, 1, "only the L1 miss reached L2");
        assert_eq!(r.dram_accesses, 1);
        assert_eq!(r.dram_bytes(64), 64);
    }

    #[test]
    fn l2_catches_l1_capacity_misses() {
        // Working set: 64 KiB (bigger than 32 KiB L1, smaller than 1 MiB L2).
        let mut h = Hierarchy::typical();
        let lines = 64 * 1024 / 64;
        for _ in 0..3 {
            for i in 0..lines {
                h.access_line(i as u64 * 64, false);
            }
        }
        let r = h.report();
        assert!(r.l1.miss_rate() > 0.9, "L1 thrashes: {:?}", r.l1);
        // After the cold pass, L2 absorbs everything.
        assert_eq!(
            r.dram_accesses as usize, lines,
            "DRAM sees only cold misses"
        );
    }

    #[test]
    fn prefetcher_eliminates_streaming_misses() {
        // A pure stream: without prefetch, one miss per line; with it, the
        // next line is always resident when the stream arrives.
        let mut plain = Hierarchy::typical();
        let mut pf = Hierarchy::typical().with_next_line_prefetch();
        for i in 0..1000u64 {
            plain.access_line(i * 64, false);
            pf.access_line(i * 64, false);
        }
        let r_plain = plain.report();
        let r_pf = pf.report();
        assert_eq!(r_plain.l1.misses, 1000);
        assert_eq!(r_pf.l1.misses, 1, "only the very first access misses");
        assert!(pf.prefetches_issued() > 0);
    }

    #[test]
    fn prefetcher_does_not_help_random_access() {
        // Strided access defeats a next-line prefetcher.
        let mut pf = Hierarchy::typical().with_next_line_prefetch();
        for i in 0..1000u64 {
            pf.access_line(i * 64 * 17, false); // 17-line stride
        }
        assert_eq!(pf.report().l1.misses, 1000);
    }

    #[test]
    fn install_silent_leaves_demand_counters_alone() {
        let mut c = tiny(1024, 64, 2);
        assert!(c.install_silent(0));
        assert!(!c.install_silent(0), "already present");
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().misses, 0);
        assert!(c.access_line(0, false).hit, "prefetched line hits");
    }

    #[test]
    fn clear_resets_state() {
        let mut h = Hierarchy::typical();
        h.access_line(0, true);
        h.clear();
        let r = h.report();
        assert_eq!(r.l1.accesses, 0);
        assert_eq!(r.dram_accesses, 0);
    }
}
