//! # pdc-cachesim — a multi-level cache simulator
//!
//! Module 2 asks students to *"utilize a performance tool to measure cache
//! misses"* (learning outcome 7) and to explain why the tiled distance
//! matrix beats the row-wise one. The course uses Linux `perf` on cluster
//! hardware; this crate is the substitution: a set-associative, LRU,
//! write-allocate/write-back cache simulator with an L1→L2 hierarchy and a
//! tracer that kernels drive with logical addresses.
//!
//! The row-wise vs tiled ordering of miss rates depends only on reuse
//! distance versus cache geometry, which this simulator models exactly, so
//! the pedagogic conclusion carries over unchanged.
//!
//! ```
//! use pdc_cachesim::{Hierarchy, Tracer};
//!
//! let mut t = Tracer::new(Hierarchy::typical());
//! let a = t.alloc(1024, 8); // 1024 f64-sized elements
//! for i in 0..1024 {
//!     t.read(a.addr(i), 8);
//! }
//! let report = t.report();
//! assert!(report.l1.misses > 0); // cold misses: one per line
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod tracer;

pub use cache::{Cache, CacheConfig, Hierarchy, HierarchyReport, LevelStats, Replacement};
pub use tracer::{Tracer, VArray};

/// Placeholder module retained for API stability; see [`cache`].
pub mod prelude {
    pub use crate::{
        Cache, CacheConfig, Hierarchy, HierarchyReport, LevelStats, Replacement, Tracer, VArray,
    };
}
