//! # pdc-cluster — machine model, simulated time, scheduler, contention
//!
//! This crate is the *hardware substrate* of the reproduction. The paper runs
//! its pedagogic modules on NAU's "Monsoon" cluster; we cannot assume a
//! cluster, so every performance-shaped claim (strong scaling, memory-bound
//! saturation, 1-node vs 2-node placement, co-scheduling degradation) is
//! derived from an explicit, deterministic machine model instead.
//!
//! The crate provides:
//!
//! * [`MachineModel`] — nodes × cores, per-core and per-node memory
//!   bandwidth, and an α–β (latency + size/bandwidth) network model with
//!   distinct intra- and inter-node parameters.
//! * [`Placement`] — how MPI ranks map onto nodes (block or round-robin),
//!   which determines who shares a memory bus and who pays inter-node
//!   message costs.
//! * [`CostModel`] — the roofline-style kernel-time and message-time
//!   calculator used by the `pdc-mpi` simulated clock.
//! * [`metrics`] — speedup / efficiency / load-imbalance helpers shared by
//!   every experiment.
//! * [`cosched`] — the "terrible twins" co-scheduling model behind the
//!   paper's example quiz question (Figure 1 and §IV-B).
//! * [`slurm`] — a small batch scheduler (FIFO + backfill) reproducing the
//!   ancillary SLURM module.

#![warn(missing_docs)]

pub mod cosched;
pub mod machine;
pub mod metrics;
pub mod slurm;

pub use cosched::{coschedule, coschedule_many, CoScheduleReport, JobProfile, PairingOutcome};
pub use machine::{CostModel, MachineModel, Placement, PlacementPolicy};
