//! Co-scheduling contention: the "terrible twins" model.
//!
//! The paper's Module 4 and the example quiz question (§IV-B, Figure 1) ask
//! students to reason about which job should share a node with another
//! user's job. The lesson: CPU cores are space-partitioned, so the contended
//! resource is *memory bandwidth*. Co-scheduling two memory-bound jobs
//! ("terrible twins", de Blanche & Lundqvist 2016) degrades both, while
//! pairing a memory-bound job with a compute-bound one is nearly free.
//!
//! We model a node as a bandwidth pool allocated by *water-filling*: every
//! rank asks for the bandwidth it would consume running flat-out; ranks with
//! small demands are satisfied first and leftover bandwidth is split evenly
//! among the hungry ones. Job time is then the roofline max of its compute
//! time and its achieved memory time.

use crate::machine::MachineModel;
use serde::{Deserialize, Serialize};

/// Work profile of one job on a single node: `ranks` ranks, each executing
/// `flops_per_rank` floating-point operations over `bytes_per_rank` of DRAM
/// traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Display name ("Program 1", "range-query/R-tree", ...).
    pub name: String,
    /// Ranks the job places on the node under study.
    pub ranks: usize,
    /// FLOP per rank.
    pub flops_per_rank: f64,
    /// DRAM bytes per rank.
    pub bytes_per_rank: f64,
}

impl JobProfile {
    /// A strongly compute-bound job: arithmetic intensity far above the
    /// machine balance point.
    pub fn compute_bound(name: impl Into<String>, ranks: usize, flops_per_rank: f64) -> Self {
        Self {
            name: name.into(),
            ranks,
            flops_per_rank,
            // One byte touched per 100 flops: negligible bandwidth demand.
            bytes_per_rank: flops_per_rank / 100.0,
        }
    }

    /// A strongly memory-bound job: streams far more bytes than its flops
    /// can hide.
    pub fn memory_bound(name: impl Into<String>, ranks: usize, bytes_per_rank: f64) -> Self {
        Self {
            name: name.into(),
            ranks,
            flops_per_rank: bytes_per_rank / 16.0,
            bytes_per_rank,
        }
    }

    /// Pure compute time of one rank (no memory stalls).
    pub fn compute_time(&self, m: &MachineModel) -> f64 {
        self.flops_per_rank / m.flops_per_core
    }

    /// Bandwidth one rank would consume if memory were free:
    /// `bytes / compute_time`, capped at the per-core limit.
    pub fn bandwidth_demand(&self, m: &MachineModel) -> f64 {
        let t = self.compute_time(m);
        if t <= 0.0 {
            return m.core_mem_bw;
        }
        (self.bytes_per_rank / t).min(m.core_mem_bw)
    }

    /// True if, running alone on `m`, the job is limited by memory rather
    /// than compute.
    pub fn is_memory_bound(&self, m: &MachineModel) -> bool {
        let granted = grant_bandwidth(&[self], m);
        let t_mem = self.bytes_per_rank / granted[0];
        t_mem > self.compute_time(m)
    }

    /// Run time of the job alone on one node of `m`.
    pub fn time_alone(&self, m: &MachineModel) -> f64 {
        let granted = grant_bandwidth(&[self], m);
        self.compute_time(m).max(self.bytes_per_rank / granted[0])
    }
}

/// Water-fill the node's memory bandwidth over all ranks of all jobs.
/// Returns the per-rank grant for each job (same order as `jobs`).
fn grant_bandwidth(jobs: &[&JobProfile], m: &MachineModel) -> Vec<f64> {
    let demands: Vec<(usize, f64, usize)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (i, j.bandwidth_demand(m), j.ranks))
        .collect();
    let total_ranks: usize = demands.iter().map(|&(_, _, r)| r).sum();
    assert!(total_ranks > 0, "no ranks to schedule");

    // Sort rank classes by per-rank demand; satisfy cheap ones first, then
    // split the remainder evenly among still-unsatisfied ranks.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| {
        demands[a]
            .1
            .partial_cmp(&demands[b].1)
            .expect("finite demands")
    });

    let mut remaining_bw = m.node_mem_bw;
    let mut remaining_ranks = total_ranks;
    let mut grants = vec![0.0; jobs.len()];
    for &idx in &order {
        let (_, demand, ranks) = demands[idx];
        let fair = remaining_bw / remaining_ranks as f64;
        let grant = demand.min(fair).min(m.core_mem_bw);
        grants[idx] = grant;
        remaining_bw -= grant * ranks as f64;
        remaining_ranks -= ranks;
    }
    grants
}

/// Outcome of co-scheduling two jobs on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairingOutcome {
    /// Name of the first job.
    pub a: String,
    /// Name of the second job.
    pub b: String,
    /// Slowdown of job `a`: co-scheduled time / alone time (1.0 = no harm).
    pub slowdown_a: f64,
    /// Slowdown of job `b`.
    pub slowdown_b: f64,
}

impl PairingOutcome {
    /// Worst slowdown suffered by either party.
    pub fn worst(&self) -> f64 {
        self.slowdown_a.max(self.slowdown_b)
    }
}

/// Co-schedule any number of jobs on one node of `m`; returns each job's
/// slowdown relative to running alone (order matches `jobs`).
///
/// # Panics
/// Panics if the combined ranks exceed the node's cores.
pub fn coschedule_many(jobs: &[&JobProfile], m: &MachineModel) -> Vec<f64> {
    let total: usize = jobs.iter().map(|j| j.ranks).sum();
    assert!(
        total <= m.cores_per_node,
        "co-scheduled jobs exceed the node's cores ({total} > {})",
        m.cores_per_node
    );
    let grants = grant_bandwidth(jobs, m);
    jobs.iter()
        .zip(&grants)
        .map(|(j, &bw)| {
            let t = j.compute_time(m).max(j.bytes_per_rank / bw);
            t / j.time_alone(m)
        })
        .collect()
}

/// Co-schedule jobs `a` and `b` on one node of `m` and report slowdowns.
///
/// # Panics
/// Panics if the combined ranks exceed the node's cores (cores are
/// space-shared on the paper's cluster, never time-shared).
pub fn coschedule(a: &JobProfile, b: &JobProfile, m: &MachineModel) -> PairingOutcome {
    assert!(
        a.ranks + b.ranks <= m.cores_per_node,
        "co-scheduled jobs exceed the node's cores ({} + {} > {})",
        a.ranks,
        b.ranks,
        m.cores_per_node
    );
    let grants = grant_bandwidth(&[a, b], m);
    let t_a = a.compute_time(m).max(a.bytes_per_rank / grants[0]);
    let t_b = b.compute_time(m).max(b.bytes_per_rank / grants[1]);
    PairingOutcome {
        a: a.name.clone(),
        b: b.name.clone(),
        slowdown_a: t_a / a.time_alone(m),
        slowdown_b: t_b / b.time_alone(m),
    }
}

/// The full degradation matrix of the quiz-question scenario: all pairings
/// of a compute-bound and a memory-bound program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoScheduleReport {
    /// compute + compute sharing a node.
    pub compute_compute: PairingOutcome,
    /// compute + memory sharing a node.
    pub compute_memory: PairingOutcome,
    /// memory + memory sharing a node ("terrible twins").
    pub memory_memory: PairingOutcome,
}

impl CoScheduleReport {
    /// Build the report for a given machine with both jobs using
    /// `ranks_each` ranks (the paper's scenario: 20-rank jobs on 32-core
    /// nodes — the incoming job fits in the 12 idle cores? No: the quiz has
    /// each program on its *own* node and asks which node the other user
    /// should share, so both jobs use up to half the cores here).
    ///
    /// # Panics
    /// Panics if `2 * ranks_each` exceeds the node's cores.
    pub fn build(m: &MachineModel, ranks_each: usize) -> Self {
        // Size work so one job alone takes on the order of a second.
        let c = JobProfile::compute_bound("compute-bound", ranks_each, 16.0e9);
        let mem = JobProfile::memory_bound("memory-bound", ranks_each, 12.0e9);
        Self {
            compute_compute: coschedule(&c, &c, m),
            compute_memory: coschedule(&c, &mem, m),
            memory_memory: coschedule(&mem, &mem, m),
        }
    }

    /// The quiz answer: sharing with the compute-bound job must be the
    /// safest option for a memory-bound newcomer.
    pub fn terrible_twins_confirmed(&self) -> bool {
        self.memory_memory.worst() > self.compute_memory.worst()
            && self.compute_compute.worst() <= self.compute_memory.worst() + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineModel {
        MachineModel::cluster_node()
    }

    #[test]
    fn classification_matches_construction() {
        let m = machine();
        assert!(!JobProfile::compute_bound("c", 8, 1e9).is_memory_bound(&m));
        assert!(JobProfile::memory_bound("m", 8, 1e9).is_memory_bound(&m));
    }

    #[test]
    fn compute_jobs_coexist_harmlessly() {
        let m = machine();
        let c = JobProfile::compute_bound("c", 16, 16.0e9);
        let out = coschedule(&c, &c, &m);
        assert!(
            out.worst() < 1.01,
            "compute twins should not degrade: {out:?}"
        );
    }

    #[test]
    fn terrible_twins_degrade_each_other() {
        let m = machine();
        let j = JobProfile::memory_bound("m", 16, 12.0e9);
        let out = coschedule(&j, &j, &m);
        // 32 memory-hungry ranks on a 100 GB/s bus: each pair gets half of
        // what it had alone, so ~2x slowdown.
        assert!(out.slowdown_a > 1.5, "twins must degrade: {out:?}");
        assert!((out.slowdown_a - out.slowdown_b).abs() < 1e-9);
    }

    #[test]
    fn mixed_pairing_is_benign_for_both() {
        let m = machine();
        let c = JobProfile::compute_bound("c", 16, 16.0e9);
        let mem = JobProfile::memory_bound("m", 16, 12.0e9);
        let out = coschedule(&c, &mem, &m);
        assert!(
            out.worst() < 1.25,
            "mixed pairing should be benign: {out:?}"
        );
    }

    #[test]
    fn report_confirms_quiz_answer() {
        let rep = CoScheduleReport::build(&machine(), 16);
        assert!(rep.terrible_twins_confirmed(), "{rep:?}");
    }

    #[test]
    #[should_panic(expected = "exceed the node's cores")]
    fn cores_are_never_oversubscribed() {
        let m = machine();
        let j = JobProfile::compute_bound("c", 20, 1e9);
        let _ = coschedule(&j, &j, &m);
    }

    #[test]
    fn many_way_coscheduling_matches_pairwise() {
        let m = machine();
        let a = JobProfile::memory_bound("a", 8, 4.0e9);
        let b = JobProfile::compute_bound("b", 8, 8.0e9);
        let pair = coschedule(&a, &b, &m);
        let many = coschedule_many(&[&a, &b], &m);
        assert!((many[0] - pair.slowdown_a).abs() < 1e-12);
        assert!((many[1] - pair.slowdown_b).abs() < 1e-12);
    }

    #[test]
    fn four_memory_jobs_degrade_worse_than_two() {
        let m = machine();
        let j = JobProfile::memory_bound("m", 8, 8.0e9);
        let two = coschedule_many(&[&j, &j], &m);
        let four = coschedule_many(&[&j, &j, &j, &j], &m);
        assert!(
            four[0] > two[0],
            "more twins, more pain: {four:?} vs {two:?}"
        );
    }

    #[test]
    #[should_panic(expected = "exceed the node's cores")]
    fn many_way_respects_core_limits() {
        let m = machine();
        let j = JobProfile::compute_bound("c", 12, 1e9);
        let _ = coschedule_many(&[&j, &j, &j], &m);
    }

    #[test]
    fn water_filling_conserves_bandwidth() {
        let m = machine();
        let a = JobProfile::memory_bound("a", 10, 1e9);
        let b = JobProfile::memory_bound("b", 10, 1e9);
        let grants = grant_bandwidth(&[&a, &b], &m);
        let total: f64 = grants[0] * 10.0 + grants[1] * 10.0;
        assert!(total <= m.node_mem_bw * (1.0 + 1e-9));
    }
}
