//! Scaling and load-balance metrics used throughout the experiments.
//!
//! These are the quantities the modules ask students to compute and reason
//! about: speedup, parallel efficiency, Karp–Flatt serial fraction, and the
//! max/mean load-imbalance factor of Module 3.

use serde::{Deserialize, Serialize};

/// Speedup of a `p`-rank run over the 1-rank baseline: `t1 / tp`.
///
/// # Panics
/// Panics if `tp` is not strictly positive.
pub fn speedup(t1: f64, tp: f64) -> f64 {
    assert!(tp > 0.0, "parallel time must be positive, got {tp}");
    t1 / tp
}

/// Parallel efficiency: `speedup / p`.
pub fn efficiency(t1: f64, tp: f64, p: usize) -> f64 {
    assert!(p > 0, "rank count must be positive");
    speedup(t1, tp) / p as f64
}

/// Karp–Flatt experimentally determined serial fraction:
/// `(1/S - 1/p) / (1 - 1/p)` for `p > 1`. Close to 0 means near-perfect
/// scaling; growing values reveal serialization or overhead.
pub fn karp_flatt(t1: f64, tp: f64, p: usize) -> f64 {
    assert!(p > 1, "Karp-Flatt requires p > 1");
    let s = speedup(t1, tp);
    let ip = 1.0 / p as f64;
    (1.0 / s - ip) / (1.0 - ip)
}

/// Gustafson's scaled speedup for weak scaling: `p + (1 - p)·s`, where `s`
/// is the serial fraction measured at `p` ranks. The weak-scaling analogue
/// of Amdahl's law — used when discussing how the modules would behave if
/// the per-rank problem size were held fixed instead of the total.
pub fn gustafson_speedup(serial_fraction: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&serial_fraction), "fraction in [0,1]");
    assert!(p > 0, "rank count must be positive");
    p as f64 + (1.0 - p as f64) * serial_fraction
}

/// Weak-scaling efficiency: `t1 / tp` with the per-rank problem size held
/// constant (ideal = 1.0 at every p).
pub fn weak_efficiency(t1: f64, tp: f64) -> f64 {
    assert!(tp > 0.0, "parallel time must be positive");
    t1 / tp
}

/// Load-imbalance factor of per-rank work amounts: `max / mean`.
/// 1.0 is perfectly balanced; Module 3's exponential activity produces
/// values well above 1.
///
/// # Panics
/// Panics on an empty slice or an all-zero workload.
pub fn imbalance_factor(loads: &[f64]) -> f64 {
    assert!(!loads.is_empty(), "imbalance of empty workload");
    let max = loads.iter().cloned().fold(f64::MIN, f64::max);
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    assert!(mean > 0.0, "mean workload must be positive");
    max / mean
}

/// A single point on a strong-scaling curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Number of ranks.
    pub p: usize,
    /// Measured (or simulated) time at `p` ranks, seconds.
    pub time: f64,
    /// Speedup relative to the 1-rank point of the same curve.
    pub speedup: f64,
    /// Parallel efficiency at `p` ranks.
    pub efficiency: f64,
}

/// A labelled strong-scaling curve: times for increasing rank counts with
/// derived speedup/efficiency columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingCurve {
    /// Human-readable label ("brute force", "R-tree", ...).
    pub label: String,
    /// The measured points, ordered by increasing `p`.
    pub points: Vec<ScalePoint>,
}

impl ScalingCurve {
    /// Build a curve from `(p, time)` samples. The first sample is the
    /// baseline; it does not need to be `p = 1`, in which case speedups are
    /// relative speedups over the smallest configuration.
    ///
    /// # Panics
    /// Panics if `samples` is empty or not sorted by increasing `p`.
    pub fn from_times(label: impl Into<String>, samples: &[(usize, f64)]) -> Self {
        assert!(
            !samples.is_empty(),
            "scaling curve needs at least one point"
        );
        assert!(
            samples.windows(2).all(|w| w[0].0 < w[1].0),
            "samples must be sorted by increasing rank count"
        );
        let (p0, t0) = samples[0];
        let points = samples
            .iter()
            .map(|&(p, t)| ScalePoint {
                p,
                time: t,
                speedup: t0 / t * p0 as f64,
                efficiency: (t0 / t) * p0 as f64 / p as f64,
            })
            .collect();
        Self {
            label: label.into(),
            points,
        }
    }

    /// Largest speedup achieved anywhere on the curve.
    pub fn max_speedup(&self) -> f64 {
        self.points
            .iter()
            .map(|pt| pt.speedup)
            .fold(f64::MIN, f64::max)
    }

    /// Efficiency at the largest rank count.
    pub fn final_efficiency(&self) -> f64 {
        self.points.last().expect("non-empty curve").efficiency
    }

    /// True if the curve "saturates": the last point's speedup improves on
    /// the midpoint's by less than `tol` (relative). Compute-bound curves
    /// keep climbing; memory-bound curves flatten (Figure 1(b)).
    pub fn saturates(&self, tol: f64) -> bool {
        if self.points.len() < 3 {
            return false;
        }
        let mid = &self.points[self.points.len() / 2];
        let last = self.points.last().expect("non-empty");
        (last.speedup - mid.speedup) / mid.speedup < tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_efficiency_basics() {
        assert!((speedup(10.0, 2.5) - 4.0).abs() < 1e-12);
        assert!((efficiency(10.0, 2.5, 4) - 1.0).abs() < 1e-12);
        assert!((efficiency(10.0, 2.5, 8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn karp_flatt_perfect_scaling_is_zero() {
        // t1 = 16, p = 16, tp = 1 => S = 16 => e = 0.
        assert!(karp_flatt(16.0, 1.0, 16).abs() < 1e-12);
        // Amdahl with 10% serial fraction recovers ~0.1.
        let f = 0.1;
        let p = 8;
        let tp = f + (1.0 - f) / p as f64;
        assert!((karp_flatt(1.0, tp, p) - f).abs() < 1e-9);
    }

    #[test]
    fn gustafson_limits() {
        // No serial fraction: perfectly scaled speedup p.
        assert!((gustafson_speedup(0.0, 16) - 16.0).abs() < 1e-12);
        // All serial: no speedup.
        assert!((gustafson_speedup(1.0, 16) - 1.0).abs() < 1e-12);
        // 10% serial at 8 ranks: 8 - 0.7 = 7.3.
        assert!((gustafson_speedup(0.1, 8) - 7.3).abs() < 1e-12);
    }

    #[test]
    fn weak_efficiency_is_time_ratio() {
        assert!((weak_efficiency(2.0, 2.0) - 1.0).abs() < 1e-12);
        assert!((weak_efficiency(2.0, 4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn imbalance_factor_detects_skew() {
        assert!((imbalance_factor(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((imbalance_factor(&[4.0, 1.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn imbalance_rejects_empty() {
        let _ = imbalance_factor(&[]);
    }

    #[test]
    fn scaling_curve_derives_columns() {
        let c = ScalingCurve::from_times("lin", &[(1, 8.0), (2, 4.0), (4, 2.0), (8, 1.0)]);
        assert!((c.max_speedup() - 8.0).abs() < 1e-12);
        assert!((c.final_efficiency() - 1.0).abs() < 1e-12);
        assert!(!c.saturates(0.05));
    }

    #[test]
    fn scaling_curve_detects_saturation() {
        let c =
            ScalingCurve::from_times("mem", &[(1, 8.0), (2, 4.0), (4, 2.0), (8, 1.9), (16, 1.85)]);
        assert!(c.saturates(0.20));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn scaling_curve_rejects_unsorted() {
        let _ = ScalingCurve::from_times("bad", &[(4, 1.0), (2, 2.0)]);
    }
}
