//! A SLURM-like batch scheduler (the paper's first ancillary module).
//!
//! Students on Monsoon submit job scripts (`#SBATCH --nodes --ntasks
//! --time ...`) into a shared queue. This module reproduces the parts of
//! that experience that matter pedagogically: writing a job script,
//! queueing, FIFO order, EASY backfill, exclusive vs shared node access,
//! and reading the resulting schedule (wait time, start time, node list).
//!
//! The simulation is event-driven over simulated seconds and fully
//! deterministic.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A batch job script, mirroring the `#SBATCH` directives the ancillary
/// module teaches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobScript {
    /// Job name (`#SBATCH --job-name`).
    pub name: String,
    /// Nodes requested (`--nodes`).
    pub nodes: usize,
    /// Tasks (ranks) per node (`--ntasks-per-node`).
    pub tasks_per_node: usize,
    /// Wall-time limit in seconds (`--time`). The scheduler kills the job
    /// at this limit.
    pub time_limit: f64,
    /// Request whole nodes (`--exclusive`) or allow core sharing.
    pub exclusive: bool,
    /// True runtime of the job in seconds (unknown to the scheduler until
    /// the job finishes; used by the simulation).
    pub actual_runtime: f64,
    /// Submission time in seconds since the simulation epoch.
    pub submit_time: f64,
    /// Queue priority (`#SBATCH --priority`, larger = sooner); ties keep
    /// submission order.
    pub priority: i64,
    /// Submission-order indices of jobs that must *complete* before this
    /// one may start (`#SBATCH --dependency=afterok:...`) — the workflow
    /// primitive scientific pipelines are built from.
    pub after: Vec<usize>,
}

impl JobScript {
    /// Convenience constructor for a shared-node job.
    pub fn new(name: impl Into<String>, nodes: usize, tasks_per_node: usize) -> Self {
        Self {
            name: name.into(),
            nodes,
            tasks_per_node,
            time_limit: 3600.0,
            exclusive: false,
            actual_runtime: 60.0,
            submit_time: 0.0,
            priority: 0,
            after: Vec::new(),
        }
    }

    /// Set the wall-time limit (builder style).
    pub fn with_time_limit(mut self, seconds: f64) -> Self {
        self.time_limit = seconds;
        self
    }

    /// Set the true runtime (builder style).
    pub fn with_runtime(mut self, seconds: f64) -> Self {
        self.actual_runtime = seconds;
        self
    }

    /// Mark the job node-exclusive (builder style).
    pub fn with_exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }

    /// Set the submit time (builder style).
    pub fn submitted_at(mut self, t: f64) -> Self {
        self.submit_time = t;
        self
    }

    /// Set the queue priority (builder style).
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.priority = priority;
        self
    }

    /// Declare dependencies by submission index (builder style):
    /// `--dependency=afterok`.
    pub fn after(mut self, deps: &[usize]) -> Self {
        self.after = deps.to_vec();
        self
    }

    /// Total ranks the job runs.
    pub fn total_tasks(&self) -> usize {
        self.nodes * self.tasks_per_node
    }

    /// Render the script as the `#SBATCH` file students would write.
    pub fn render(&self) -> String {
        let mins = (self.time_limit / 60.0).ceil() as u64;
        let mut s = String::from("#!/bin/bash\n");
        s.push_str(&format!("#SBATCH --job-name={}\n", self.name));
        s.push_str(&format!("#SBATCH --nodes={}\n", self.nodes));
        s.push_str(&format!(
            "#SBATCH --ntasks-per-node={}\n",
            self.tasks_per_node
        ));
        s.push_str(&format!("#SBATCH --time=00:{mins:02}:00\n"));
        if self.exclusive {
            s.push_str("#SBATCH --exclusive\n");
        }
        s.push_str(&format!(
            "srun -n {} ./my_mpi_program\n",
            self.total_tasks()
        ));
        s
    }
}

/// How the job ultimately finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Ran to completion within its limit.
    Completed,
    /// Hit its wall-time limit and was killed.
    TimedOut,
}

/// A scheduled job in the simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledJob {
    /// The submitted script.
    pub script: JobScript,
    /// Time the job started running.
    pub start_time: f64,
    /// Time the job left the machine.
    pub end_time: f64,
    /// Nodes allocated (indices into the cluster's node list).
    pub nodes: Vec<usize>,
    /// Completion status.
    pub outcome: JobOutcome,
}

impl ScheduledJob {
    /// Queue wait: start − submit.
    pub fn wait_time(&self) -> f64 {
        self.start_time - self.script.submit_time
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Strict first-in-first-out: the queue head blocks everyone behind it.
    Fifo,
    /// EASY backfill: later jobs may start early if they cannot delay the
    /// queue head's reservation.
    EasyBackfill,
}

/// The cluster scheduler simulation.
#[derive(Debug, Clone)]
pub struct Scheduler {
    nodes: usize,
    cores_per_node: usize,
    policy: Policy,
    queue: Vec<JobScript>,
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    free_cores: usize,
    exclusive_held: bool,
}

impl Scheduler {
    /// New scheduler for `nodes` nodes of `cores_per_node` cores.
    ///
    /// # Panics
    /// Panics on a zero-sized cluster.
    pub fn new(nodes: usize, cores_per_node: usize, policy: Policy) -> Self {
        assert!(nodes > 0 && cores_per_node > 0, "cluster must be non-empty");
        Self {
            nodes,
            cores_per_node,
            policy,
            queue: Vec::new(),
        }
    }

    /// Submit a job script.
    pub fn submit(&mut self, script: JobScript) {
        assert!(
            script.nodes <= self.nodes && script.tasks_per_node <= self.cores_per_node,
            "job '{}' requests more than the cluster has",
            script.name
        );
        self.queue.push(script);
    }

    /// Run the simulation to completion and return per-job schedules in
    /// submission order.
    pub fn run(&mut self) -> Vec<ScheduledJob> {
        // Index jobs by submission order (dependencies refer to these
        // indices), then sort the queue by submit time, stably.
        let mut pending: Vec<(usize, JobScript)> = self.queue.drain(..).enumerate().collect();
        pending.sort_by(|a, b| {
            a.1.submit_time
                .partial_cmp(&b.1.submit_time)
                .expect("finite submit times")
        });

        let mut node_state = vec![
            NodeState {
                free_cores: self.cores_per_node,
                exclusive_held: false,
            };
            self.nodes
        ];
        // Running jobs keyed by end time (BTreeMap gives deterministic event
        // order; f64 keys stored as ordered bits).
        let mut running: BTreeMap<(u64, usize), (usize, ScheduledJob)> = BTreeMap::new();
        let mut done: Vec<(usize, ScheduledJob)> = Vec::new();
        let mut now = 0.0f64;
        let mut next_key = 0usize;
        let mut waiting: Vec<(usize, JobScript)> = pending;

        loop {
            // Retire everything that ends at or before `now`.
            let ended: Vec<(u64, usize)> = running
                .range(..=(now.to_bits(), usize::MAX))
                .map(|(&k, _)| k)
                .collect();
            for k in ended {
                let (idx, job) = running.remove(&k).expect("key just listed");
                for &n in &job.nodes {
                    node_state[n].free_cores += job.script.tasks_per_node;
                    if job.script.exclusive {
                        node_state[n].exclusive_held = false;
                    }
                }
                done.push((idx, job));
            }

            // Try to start queued jobs whose submit time has arrived.
            let mut started_any = true;
            while started_any {
                started_any = false;
                let deps_done = |script: &JobScript| {
                    script.after.iter().all(|&dep| {
                        done.iter()
                            .any(|&(idx, ref j)| idx == dep && j.end_time <= now)
                    })
                };
                let mut arrived: Vec<usize> = (0..waiting.len())
                    .filter(|&i| waiting[i].1.submit_time <= now && deps_done(&waiting[i].1))
                    .collect();
                if arrived.is_empty() {
                    break;
                }
                // Queue order: priority first (descending), then original
                // submission order (`waiting` is submit-sorted and stable).
                arrived.sort_by_key(|&i| (-waiting[i].1.priority, waiting[i].0));
                let head = arrived[0];
                // Head-of-line job starts if it fits.
                if let Some(alloc) =
                    try_allocate(&node_state, &waiting[head].1, self.cores_per_node)
                {
                    let (idx, script) = waiting.remove(head);
                    start_job(
                        &mut node_state,
                        &mut running,
                        &mut next_key,
                        idx,
                        script,
                        alloc,
                        now,
                    );
                    started_any = true;
                    continue;
                }
                // Head blocked: with EASY backfill, later arrived jobs may
                // start if they end before the head's earliest start.
                if self.policy == Policy::EasyBackfill {
                    let shadow =
                        shadow_time(&node_state, &running, &waiting[head].1, self.cores_per_node);
                    for &i in arrived.iter().skip(1) {
                        let cand = &waiting[i].1;
                        if now + cand.time_limit <= shadow {
                            if let Some(alloc) =
                                try_allocate(&node_state, cand, self.cores_per_node)
                            {
                                let (idx, script) = waiting.remove(i);
                                start_job(
                                    &mut node_state,
                                    &mut running,
                                    &mut next_key,
                                    idx,
                                    script,
                                    alloc,
                                    now,
                                );
                                started_any = true;
                                break;
                            }
                        }
                    }
                }
            }

            // Advance time to the next event.
            let next_end = running.keys().next().map(|&(bits, _)| f64::from_bits(bits));
            let next_submit = waiting
                .iter()
                .map(|(_, s)| s.submit_time)
                .filter(|&t| t > now)
                .fold(f64::INFINITY, f64::min);
            now = match (next_end, next_submit.is_finite()) {
                (Some(e), true) => e.min(next_submit),
                (Some(e), false) => e,
                (None, true) => next_submit,
                (None, false) => break,
            };
        }
        assert!(
            waiting.is_empty(),
            "unsatisfiable dependencies left {} job(s) unscheduled",
            waiting.len()
        );

        done.sort_by_key(|&(idx, _)| idx);
        done.into_iter().map(|(_, j)| j).collect()
    }
}

/// Find nodes that can host `script` right now. Returns node indices.
fn try_allocate(
    nodes: &[NodeState],
    script: &JobScript,
    cores_per_node: usize,
) -> Option<Vec<usize>> {
    let mut chosen = Vec::with_capacity(script.nodes);
    for (i, st) in nodes.iter().enumerate() {
        let fits = if script.exclusive {
            st.free_cores == cores_per_node && !st.exclusive_held
        } else {
            !st.exclusive_held && st.free_cores >= script.tasks_per_node
        };
        if fits {
            chosen.push(i);
            if chosen.len() == script.nodes {
                return Some(chosen);
            }
        }
    }
    None
}

fn start_job(
    node_state: &mut [NodeState],
    running: &mut BTreeMap<(u64, usize), (usize, ScheduledJob)>,
    next_key: &mut usize,
    idx: usize,
    script: JobScript,
    alloc: Vec<usize>,
    now: f64,
) {
    for &n in &alloc {
        node_state[n].free_cores -= script.tasks_per_node;
        if script.exclusive {
            node_state[n].exclusive_held = true;
        }
    }
    let (runtime, outcome) = if script.actual_runtime > script.time_limit {
        (script.time_limit, JobOutcome::TimedOut)
    } else {
        (script.actual_runtime, JobOutcome::Completed)
    };
    let end = now + runtime;
    let job = ScheduledJob {
        start_time: now,
        end_time: end,
        nodes: alloc,
        outcome,
        script,
    };
    running.insert((end.to_bits(), *next_key), (idx, job));
    *next_key += 1;
}

/// Earliest time the blocked head job could start, assuming running jobs
/// release their cores at their scheduled end times.
fn shadow_time(
    nodes: &[NodeState],
    running: &BTreeMap<(u64, usize), (usize, ScheduledJob)>,
    head: &JobScript,
    cores_per_node: usize,
) -> f64 {
    // Simulate releases in end-time order until the head fits.
    let mut state: Vec<NodeState> = nodes.to_vec();
    for (&(bits, _), (_, job)) in running.iter() {
        for &n in &job.nodes {
            state[n].free_cores += job.script.tasks_per_node;
            if job.script.exclusive {
                state[n].exclusive_held = false;
            }
        }
        let fits = state
            .iter()
            .filter(|st| {
                if head.exclusive {
                    st.free_cores == cores_per_node && !st.exclusive_held
                } else {
                    !st.exclusive_held && st.free_cores >= head.tasks_per_node
                }
            })
            .count()
            >= head.nodes;
        if fits {
            return f64::from_bits(bits);
        }
    }
    f64::INFINITY
}

/// Summary statistics of a finished schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Latest end time over all jobs.
    pub makespan: f64,
    /// Mean queue wait over all jobs.
    pub mean_wait: f64,
    /// Core-seconds used divided by core-seconds available until the
    /// makespan (exclusive jobs are charged the whole node).
    pub utilization: f64,
}

/// Compute [`ScheduleMetrics`] for a schedule on a `nodes`×`cores_per_node`
/// cluster.
///
/// # Panics
/// Panics on an empty schedule or empty cluster.
pub fn schedule_metrics(
    schedule: &[ScheduledJob],
    nodes: usize,
    cores_per_node: usize,
) -> ScheduleMetrics {
    assert!(!schedule.is_empty(), "metrics of an empty schedule");
    assert!(nodes > 0 && cores_per_node > 0, "empty cluster");
    let makespan = schedule.iter().map(|j| j.end_time).fold(0.0, f64::max);
    let mean_wait =
        schedule.iter().map(ScheduledJob::wait_time).sum::<f64>() / schedule.len() as f64;
    let used: f64 = schedule
        .iter()
        .map(|j| {
            let cores = if j.script.exclusive {
                j.nodes.len() * cores_per_node
            } else {
                j.nodes.len() * j.script.tasks_per_node
            };
            cores as f64 * (j.end_time - j.start_time)
        })
        .sum();
    let available = (nodes * cores_per_node) as f64 * makespan;
    ScheduleMetrics {
        makespan,
        mean_wait,
        utilization: if available > 0.0 {
            used / available
        } else {
            0.0
        },
    }
}

/// Render a finished schedule as a per-node Gantt strip over `width`
/// columns (`#` = busy cores, `·` = idle). One row per node.
pub fn render_schedule(schedule: &[ScheduledJob], nodes: usize, width: usize) -> String {
    assert!(width > 0 && nodes > 0, "non-empty chart");
    let makespan = schedule.iter().map(|j| j.end_time).fold(0.0f64, f64::max);
    let mut out = String::new();
    if makespan <= 0.0 {
        out.push_str("(empty schedule)\n");
        return out;
    }
    let col_dt = makespan / width as f64;
    for node in 0..nodes {
        out.push_str(&format!("node {node:>2} │"));
        for col in 0..width {
            let t = (col as f64 + 0.5) * col_dt;
            let busy = schedule
                .iter()
                .any(|j| j.nodes.contains(&node) && j.start_time <= t && t < j.end_time);
            out.push(if busy { '#' } else { '·' });
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "         0s {:>width$.0}s\n",
        makespan,
        width = width - 2
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_gantt_shows_busy_and_idle() {
        let mut sched = Scheduler::new(2, 32, Policy::Fifo);
        sched.submit(
            JobScript::new("a", 1, 32)
                .with_runtime(50.0)
                .with_time_limit(60.0),
        );
        sched.submit(
            JobScript::new("b", 2, 32)
                .with_runtime(50.0)
                .with_time_limit(60.0),
        );
        let out = sched.run();
        let chart = render_schedule(&out, 2, 20);
        assert_eq!(chart.lines().count(), 3);
        let node1 = chart.lines().nth(1).expect("two nodes");
        assert!(
            node1.contains('·'),
            "node 1 idles while job a runs: {chart}"
        );
        assert!(node1.contains('#'), "node 1 joins for job b: {chart}");
    }

    #[test]
    fn empty_schedule_renders_gracefully() {
        assert!(render_schedule(&[], 2, 10).contains("empty"));
    }

    #[test]
    fn render_produces_sbatch_directives() {
        let s = JobScript::new("kmeans", 2, 16)
            .with_time_limit(600.0)
            .with_exclusive()
            .render();
        assert!(s.contains("#SBATCH --nodes=2"));
        assert!(s.contains("#SBATCH --ntasks-per-node=16"));
        assert!(s.contains("--exclusive"));
        assert!(s.contains("srun -n 32"));
    }

    #[test]
    fn single_job_starts_immediately() {
        let mut sched = Scheduler::new(2, 32, Policy::Fifo);
        sched.submit(JobScript::new("a", 1, 8).with_runtime(100.0));
        let out = sched.run();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].start_time, 0.0);
        assert_eq!(out[0].end_time, 100.0);
        assert_eq!(out[0].outcome, JobOutcome::Completed);
    }

    #[test]
    fn jobs_share_a_node_when_cores_allow() {
        let mut sched = Scheduler::new(1, 32, Policy::Fifo);
        sched.submit(JobScript::new("a", 1, 16).with_runtime(100.0));
        sched.submit(JobScript::new("b", 1, 16).with_runtime(100.0));
        let out = sched.run();
        assert_eq!(out[0].start_time, 0.0);
        assert_eq!(out[1].start_time, 0.0, "both fit on the shared node");
    }

    #[test]
    fn exclusive_job_blocks_sharers() {
        let mut sched = Scheduler::new(1, 32, Policy::Fifo);
        sched.submit(
            JobScript::new("a", 1, 8)
                .with_runtime(50.0)
                .with_exclusive(),
        );
        sched.submit(JobScript::new("b", 1, 8).with_runtime(50.0));
        let out = sched.run();
        assert_eq!(out[0].start_time, 0.0);
        assert_eq!(out[1].start_time, 50.0, "exclusive job holds the node");
    }

    #[test]
    fn fifo_head_blocks_backfillable_job() {
        let mut sched = Scheduler::new(1, 32, Policy::Fifo);
        sched.submit(
            JobScript::new("big", 1, 32)
                .with_runtime(100.0)
                .with_time_limit(200.0),
        );
        sched.submit(
            JobScript::new("big2", 1, 32)
                .with_runtime(100.0)
                .with_time_limit(200.0),
        );
        sched.submit(
            JobScript::new("tiny", 1, 4)
                .with_runtime(10.0)
                .with_time_limit(20.0),
        );
        let out = sched.run();
        assert_eq!(
            out[2].start_time, 200.0,
            "FIFO: tiny waits for both big jobs"
        );
    }

    #[test]
    fn easy_backfill_slips_tiny_job_through() {
        let mut sched = Scheduler::new(1, 32, Policy::EasyBackfill);
        sched.submit(
            JobScript::new("big", 1, 32)
                .with_runtime(100.0)
                .with_time_limit(200.0),
        );
        sched.submit(
            JobScript::new("big2", 1, 32)
                .with_runtime(100.0)
                .with_time_limit(200.0),
        );
        sched.submit(
            JobScript::new("tiny", 1, 4)
                .with_runtime(10.0)
                .with_time_limit(20.0),
        );
        let out = sched.run();
        // tiny (20s limit) ends before big's shadow time (100s) and uses idle cores... but
        // big occupies all 32 cores, so tiny backfills only after big ends and
        // before big2's reservation: start at 100 alongside big2? big2 takes
        // all cores at 100. tiny must fit *before* big2's shadow; at t=0 no
        // free cores exist, so tiny cannot backfill and runs at 200.
        // Rebuild the scenario with spare cores instead:
        assert_eq!(out[2].script.name, "tiny");

        let mut sched = Scheduler::new(1, 32, Policy::EasyBackfill);
        sched.submit(
            JobScript::new("half", 1, 16)
                .with_runtime(100.0)
                .with_time_limit(200.0),
        );
        sched.submit(
            JobScript::new("big", 1, 32)
                .with_runtime(100.0)
                .with_time_limit(200.0),
        );
        sched.submit(
            JobScript::new("tiny", 1, 4)
                .with_runtime(10.0)
                .with_time_limit(20.0),
        );
        let out = sched.run();
        assert_eq!(out[0].start_time, 0.0);
        assert_eq!(out[1].start_time, 100.0, "big waits for half's cores");
        assert_eq!(
            out[2].start_time, 0.0,
            "tiny backfills into the idle half-node"
        );
    }

    #[test]
    fn dependencies_gate_workflow_stages() {
        // A three-stage pipeline: preprocess -> two analyses -> summarize.
        let mut sched = Scheduler::new(2, 32, Policy::EasyBackfill);
        sched.submit(
            JobScript::new("preprocess", 1, 8)
                .with_runtime(100.0)
                .with_time_limit(120.0),
        ); // 0
        sched.submit(
            JobScript::new("analysis-a", 1, 16)
                .with_runtime(50.0)
                .with_time_limit(60.0)
                .after(&[0]),
        ); // 1
        sched.submit(
            JobScript::new("analysis-b", 1, 16)
                .with_runtime(50.0)
                .with_time_limit(60.0)
                .after(&[0]),
        ); // 2
        sched.submit(
            JobScript::new("summarize", 1, 4)
                .with_runtime(10.0)
                .with_time_limit(20.0)
                .after(&[1, 2]),
        ); // 3
        let out = sched.run();
        let find = |name: &str| {
            out.iter()
                .find(|j| j.script.name == name)
                .expect("scheduled")
        };
        assert_eq!(find("preprocess").start_time, 0.0);
        assert_eq!(find("analysis-a").start_time, 100.0);
        assert_eq!(
            find("analysis-b").start_time,
            100.0,
            "independent analyses overlap"
        );
        assert_eq!(find("summarize").start_time, 150.0);
    }

    #[test]
    fn dependent_jobs_do_not_backfill_early() {
        // Even though cores are free at t=0, the dependent job must wait.
        let mut sched = Scheduler::new(1, 32, Policy::EasyBackfill);
        sched.submit(
            JobScript::new("stage1", 1, 4)
                .with_runtime(50.0)
                .with_time_limit(60.0),
        );
        sched.submit(
            JobScript::new("stage2", 1, 4)
                .with_runtime(10.0)
                .with_time_limit(20.0)
                .after(&[0]),
        );
        let out = sched.run();
        assert_eq!(out[1].start_time, 50.0);
    }

    #[test]
    #[should_panic(expected = "unsatisfiable dependencies")]
    fn cyclic_dependencies_are_reported() {
        let mut sched = Scheduler::new(1, 32, Policy::Fifo);
        sched.submit(JobScript::new("a", 1, 4).after(&[1]));
        sched.submit(JobScript::new("b", 1, 4).after(&[0]));
        let _ = sched.run();
    }

    #[test]
    fn a_generous_time_limit_blocks_your_own_backfill() {
        // The ancillary handout's exercise: the same short job backfills
        // with an honest limit but waits with a padded one — the scheduler
        // can only reason about limits, not true runtimes.
        let schedule = |limit: f64| {
            let mut sched = Scheduler::new(1, 32, Policy::EasyBackfill);
            sched.submit(
                JobScript::new("half", 1, 16)
                    .with_runtime(100.0)
                    .with_time_limit(120.0),
            );
            sched.submit(
                JobScript::new("big", 1, 32)
                    .with_runtime(100.0)
                    .with_time_limit(120.0),
            );
            sched.submit(
                JobScript::new("mine", 1, 4)
                    .with_runtime(10.0)
                    .with_time_limit(limit),
            );
            let out = sched.run();
            out.iter()
                .find(|j| j.script.name == "mine")
                .expect("scheduled")
                .start_time
        };
        assert_eq!(schedule(20.0), 0.0, "honest limit: backfills immediately");
        assert!(
            schedule(500.0) > 0.0,
            "padded limit: cannot fit before the reservation"
        );
    }

    #[test]
    fn overlong_jobs_are_killed_at_the_limit() {
        let mut sched = Scheduler::new(1, 32, Policy::Fifo);
        sched.submit(
            JobScript::new("a", 1, 8)
                .with_runtime(500.0)
                .with_time_limit(100.0),
        );
        let out = sched.run();
        assert_eq!(out[0].outcome, JobOutcome::TimedOut);
        assert_eq!(out[0].end_time, 100.0);
    }

    #[test]
    fn priority_overrides_submission_order() {
        let mut sched = Scheduler::new(1, 32, Policy::Fifo);
        sched.submit(
            JobScript::new("blocker", 1, 32)
                .with_runtime(100.0)
                .with_time_limit(200.0),
        );
        sched.submit(
            JobScript::new("low", 1, 32)
                .with_runtime(10.0)
                .with_time_limit(20.0),
        );
        sched.submit(
            JobScript::new("high", 1, 32)
                .with_runtime(10.0)
                .with_time_limit(20.0)
                .with_priority(10),
        );
        let out = sched.run();
        let find = |name: &str| {
            out.iter()
                .find(|j| j.script.name == name)
                .expect("scheduled")
        };
        assert_eq!(find("high").start_time, 0.0, "high priority goes first");
        assert_eq!(find("blocker").start_time, 10.0, "then submission order");
        assert_eq!(find("low").start_time, 110.0);
    }

    #[test]
    fn metrics_summarize_the_schedule() {
        let mut sched = Scheduler::new(2, 32, Policy::Fifo);
        sched.submit(
            JobScript::new("a", 2, 32)
                .with_runtime(100.0)
                .with_time_limit(120.0),
        );
        sched.submit(
            JobScript::new("b", 1, 32)
                .with_runtime(50.0)
                .with_time_limit(60.0),
        );
        let out = sched.run();
        let m = schedule_metrics(&out, 2, 32);
        assert_eq!(m.makespan, 150.0);
        // a: 64 cores x 100s; b: 32 x 50 => 8000 core-s of 64*150 = 9600.
        assert!((m.utilization - 8000.0 / 9600.0).abs() < 1e-9);
        assert!((m.mean_wait - 50.0).abs() < 1e-9);
    }

    #[test]
    fn later_submissions_wait_for_their_submit_time() {
        let mut sched = Scheduler::new(2, 32, Policy::Fifo);
        sched.submit(
            JobScript::new("a", 1, 8)
                .with_runtime(10.0)
                .submitted_at(50.0),
        );
        let out = sched.run();
        assert_eq!(out[0].start_time, 50.0);
        assert!((out[0].wait_time()).abs() < 1e-12);
    }
}
