//! Machine model, rank placement, and the roofline/α–β cost model.
//!
//! The model deliberately stays simple enough to reason about in a classroom
//! while still producing the qualitative behaviours the paper's modules
//! teach:
//!
//! * compute-bound kernels scale linearly in the number of ranks;
//! * memory-bound kernels scale only until the node's memory bus saturates
//!   (`node_mem_bw / core_mem_bw` cores), then flatline;
//! * messages cost `latency + bytes / bandwidth`, with inter-node messages
//!   paying higher latency and lower bandwidth than intra-node ones;
//! * spreading the same number of ranks over more nodes buys more aggregate
//!   memory bandwidth (the Module 4 activity-3 lesson).

use serde::{Deserialize, Serialize};

/// Static description of a cluster: homogeneous nodes on a network.
///
/// All quantities use SI base units: seconds, bytes, FLOP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Number of compute nodes available.
    pub nodes: usize,
    /// Physical cores per node. One MPI rank occupies one core.
    pub cores_per_node: usize,
    /// Sustained scalar floating-point rate of one core, FLOP/s.
    pub flops_per_core: f64,
    /// Maximum DRAM bandwidth a single core can draw, bytes/s.
    pub core_mem_bw: f64,
    /// Aggregate DRAM bandwidth of one node, bytes/s. Shared by all ranks
    /// placed on the node; this sharing is what makes memory-bound programs
    /// stop scaling.
    pub node_mem_bw: f64,
    /// One-way latency of an intra-node (shared-memory transport) message, s.
    pub intra_latency: f64,
    /// Bandwidth of intra-node messaging, bytes/s.
    pub intra_bw: f64,
    /// One-way latency of an inter-node (network) message, s.
    pub inter_latency: f64,
    /// Bandwidth of inter-node messaging, bytes/s.
    pub inter_bw: f64,
    /// Fixed software overhead charged to the sender per message, s.
    pub send_overhead: f64,
}

impl MachineModel {
    /// A model of one 32-core cluster node resembling the paper's testbed
    /// (Monsoon nodes are dual-socket Xeons): 32 cores, ~16 GFLOP/s scalar
    /// per core, 12 GB/s per-core DRAM bandwidth against a 100 GB/s bus.
    ///
    /// With these numbers a perfectly memory-bound kernel stops scaling at
    /// `100/12 ≈ 8.3` ranks — the saturating curve of Figure 1(b).
    pub fn cluster_node() -> Self {
        Self {
            nodes: 1,
            cores_per_node: 32,
            flops_per_core: 16.0e9,
            core_mem_bw: 12.0e9,
            node_mem_bw: 100.0e9,
            intra_latency: 0.5e-6,
            intra_bw: 20.0e9,
            inter_latency: 2.0e-6,
            inter_bw: 10.0e9,
            send_overhead: 0.2e-6,
        }
    }

    /// The same node type replicated `nodes` times on an InfiniBand-like
    /// fabric — the multi-node experiments of Modules 4 and 5.
    pub fn cluster(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::cluster_node()
        }
    }

    /// Total cores in the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// A student laptop: 8 cores, modest single-channel memory. Useful for
    /// showing how the same module behaves before the class moves to the
    /// cluster model.
    pub fn laptop() -> Self {
        Self {
            nodes: 1,
            cores_per_node: 8,
            flops_per_core: 8.0e9,
            core_mem_bw: 10.0e9,
            node_mem_bw: 25.0e9,
            intra_latency: 0.3e-6,
            intra_bw: 15.0e9,
            inter_latency: 50.0e-6, // (no real fabric — loopback-ish)
            inter_bw: 1.0e9,
            send_overhead: 0.2e-6,
        }
    }

    /// A bandwidth-rich fat node (HBM-class): memory-bound codes keep
    /// scaling far longer — useful for "what if the hardware changed?"
    /// discussions in Module 4.
    pub fn fat_memory_node() -> Self {
        Self {
            node_mem_bw: 800.0e9,
            core_mem_bw: 40.0e9,
            ..Self::cluster_node()
        }
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::cluster_node()
    }
}

/// Policy for mapping ranks onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Fill each node before moving to the next (SLURM `--distribution=block`).
    Block,
    /// Deal ranks across nodes like cards (SLURM `--distribution=cyclic`).
    RoundRobin,
}

/// A concrete assignment of `n_ranks` ranks onto the nodes of a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    node_of_rank: Vec<usize>,
    ranks_per_node: Vec<usize>,
}

impl Placement {
    /// Place `n_ranks` ranks on `nodes_used` nodes under `policy`.
    ///
    /// # Panics
    /// Panics if `nodes_used == 0` or if the ranks do not fit on the
    /// requested nodes given `cores_per_node`.
    pub fn new(
        n_ranks: usize,
        nodes_used: usize,
        cores_per_node: usize,
        policy: PlacementPolicy,
    ) -> Self {
        assert!(nodes_used > 0, "placement requires at least one node");
        assert!(
            n_ranks <= nodes_used * cores_per_node,
            "{n_ranks} ranks do not fit on {nodes_used} nodes of {cores_per_node} cores"
        );
        let mut node_of_rank = Vec::with_capacity(n_ranks);
        match policy {
            PlacementPolicy::Block => {
                // Spread as evenly as possible, filling earlier nodes first.
                let base = n_ranks / nodes_used;
                let extra = n_ranks % nodes_used;
                for node in 0..nodes_used {
                    let count = base + usize::from(node < extra);
                    node_of_rank.extend(std::iter::repeat_n(node, count));
                }
            }
            PlacementPolicy::RoundRobin => {
                for rank in 0..n_ranks {
                    node_of_rank.push(rank % nodes_used);
                }
            }
        }
        let mut ranks_per_node = vec![0usize; nodes_used];
        for &node in &node_of_rank {
            ranks_per_node[node] += 1;
        }
        Self {
            node_of_rank,
            ranks_per_node,
        }
    }

    /// All ranks on a single node.
    pub fn single_node(n_ranks: usize, cores_per_node: usize) -> Self {
        Self::new(n_ranks, 1, cores_per_node, PlacementPolicy::Block)
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of_rank[rank]
    }

    /// Number of ranks sharing `rank`'s node (including `rank` itself).
    pub fn sharers_of(&self, rank: usize) -> usize {
        self.ranks_per_node[self.node_of(rank)]
    }

    /// Number of ranks placed.
    pub fn n_ranks(&self) -> usize {
        self.node_of_rank.len()
    }

    /// Number of nodes in use.
    pub fn nodes_used(&self) -> usize {
        self.ranks_per_node.len()
    }

    /// True if `a` and `b` live on the same node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

/// Roofline kernel-cost and α–β message-cost calculator bound to a machine
/// and a placement. `pdc-mpi`'s simulated clock calls into this.
#[derive(Debug, Clone)]
pub struct CostModel {
    machine: MachineModel,
    placement: Placement,
    /// Extra ranks contending for each node's memory bus beyond this job's
    /// own ranks (used by the co-scheduling model).
    external_sharers: Vec<usize>,
}

impl CostModel {
    /// Build a cost model; `placement` must fit within `machine`.
    ///
    /// # Panics
    /// Panics if the placement uses more nodes than the machine has.
    pub fn new(machine: MachineModel, placement: Placement) -> Self {
        assert!(
            placement.nodes_used() <= machine.nodes,
            "placement uses {} nodes but machine has {}",
            placement.nodes_used(),
            machine.nodes
        );
        let external_sharers = vec![0; placement.nodes_used()];
        Self {
            machine,
            placement,
            external_sharers,
        }
    }

    /// Declare that `count` ranks of *another* job contend for memory
    /// bandwidth on `node` (co-scheduling).
    pub fn add_external_sharers(&mut self, node: usize, count: usize) {
        self.external_sharers[node] += count;
    }

    /// The underlying machine.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The rank-to-node placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Effective memory bandwidth available to one rank on `rank`'s node:
    /// its core cap, or its fair share of the node bus, whichever is lower.
    pub fn effective_mem_bw(&self, rank: usize) -> f64 {
        let node = self.placement.node_of(rank);
        let sharers = self.placement.sharers_of(rank) + self.external_sharers[node];
        let fair_share = self.machine.node_mem_bw / sharers as f64;
        self.machine.core_mem_bw.min(fair_share)
    }

    /// Time for `rank` to execute a kernel performing `flops` floating-point
    /// operations over `bytes` of DRAM traffic: the roofline maximum of the
    /// compute time and the memory time.
    pub fn kernel_time(&self, rank: usize, flops: f64, bytes: f64) -> f64 {
        debug_assert!(flops >= 0.0 && bytes >= 0.0);
        let t_compute = flops / self.machine.flops_per_core;
        let t_memory = bytes / self.effective_mem_bw(rank);
        t_compute.max(t_memory)
    }

    /// One-way transfer time of a `bytes`-sized message from `src` to `dst`
    /// (sender gap + wire latency).
    pub fn message_time(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        self.sender_gap(src, dst, bytes) + self.message_latency(src, dst)
    }

    /// Time the *sender* is occupied injecting a `bytes`-sized message
    /// (the LogGP per-byte gap: `bytes / link bandwidth`). Serializing this
    /// at the sender is what makes a linear broadcast pay `O(p·m/bw)` at
    /// the root while a binomial tree pays `O(log p · m/bw)` per node.
    pub fn sender_gap(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        let bw = if self.placement.same_node(src, dst) {
            self.machine.intra_bw
        } else {
            self.machine.inter_bw
        };
        bytes as f64 / bw
    }

    /// Wire latency from `src` to `dst` (charged at the receiver: a message
    /// sent at time `t` is available at `t + latency`).
    pub fn message_latency(&self, src: usize, dst: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        if self.placement.same_node(src, dst) {
            self.machine.intra_latency
        } else {
            self.machine.inter_latency
        }
    }

    /// Sender-side overhead per message.
    pub fn send_overhead(&self) -> f64 {
        self.machine.send_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_fills_evenly() {
        let p = Placement::new(10, 3, 32, PlacementPolicy::Block);
        assert_eq!(p.nodes_used(), 3);
        // 10 = 4 + 3 + 3
        assert_eq!(p.sharers_of(0), 4);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(3), 0);
        assert_eq!(p.node_of(4), 1);
        assert_eq!(p.node_of(9), 2);
    }

    #[test]
    fn round_robin_placement_deals_ranks() {
        let p = Placement::new(6, 3, 32, PlacementPolicy::RoundRobin);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(1), 1);
        assert_eq!(p.node_of(2), 2);
        assert_eq!(p.node_of(3), 0);
        assert!(p.same_node(0, 3));
        assert!(!p.same_node(0, 1));
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn placement_rejects_oversubscription() {
        let _ = Placement::new(33, 1, 32, PlacementPolicy::Block);
    }

    #[test]
    fn memory_bandwidth_saturates_with_sharers() {
        let m = MachineModel::cluster_node();
        // One rank alone: limited by its core, not the bus.
        let cm1 = CostModel::new(m.clone(), Placement::single_node(1, 32));
        assert_eq!(cm1.effective_mem_bw(0), m.core_mem_bw);
        // 20 ranks: the 100 GB/s bus split 20 ways beats the 12 GB/s core cap.
        let cm20 = CostModel::new(m.clone(), Placement::single_node(20, 32));
        assert!((cm20.effective_mem_bw(0) - m.node_mem_bw / 20.0).abs() < 1e-6);
    }

    #[test]
    fn two_nodes_double_aggregate_bandwidth() {
        let m = MachineModel::cluster(2);
        let one = CostModel::new(m.clone(), Placement::new(16, 1, 32, PlacementPolicy::Block));
        let two = CostModel::new(m, Placement::new(16, 2, 32, PlacementPolicy::Block));
        // 16 ranks on one node: 100/16 GB/s each. On two nodes: 100/8 each.
        assert!(two.effective_mem_bw(0) > one.effective_mem_bw(0));
    }

    #[test]
    fn kernel_time_is_roofline_max() {
        let m = MachineModel::cluster_node();
        let cm = CostModel::new(m.clone(), Placement::single_node(1, 32));
        // Pure compute.
        let t = cm.kernel_time(0, 16.0e9, 0.0);
        assert!((t - 1.0).abs() < 1e-12);
        // Pure memory: 12 GB at 12 GB/s.
        let t = cm.kernel_time(0, 0.0, 12.0e9);
        assert!((t - 1.0).abs() < 1e-9);
        // Max of both.
        let t = cm.kernel_time(0, 32.0e9, 12.0e9);
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn presets_are_internally_consistent() {
        for m in [
            MachineModel::laptop(),
            MachineModel::cluster_node(),
            MachineModel::fat_memory_node(),
        ] {
            assert!(m.cores_per_node > 0 && m.nodes > 0);
            assert!(m.core_mem_bw <= m.node_mem_bw);
            assert!(m.flops_per_core > 0.0);
        }
        // The fat node saturates much later than the standard node.
        let std_knee = MachineModel::cluster_node();
        let fat = MachineModel::fat_memory_node();
        assert!(
            fat.node_mem_bw / fat.core_mem_bw > std_knee.node_mem_bw / std_knee.core_mem_bw,
            "fat node sustains more memory-bound ranks"
        );
    }

    #[test]
    fn inter_node_messages_cost_more() {
        let m = MachineModel::cluster(2);
        let cm = CostModel::new(m, Placement::new(4, 2, 32, PlacementPolicy::Block));
        // Ranks 0,1 on node 0; ranks 2,3 on node 1.
        let intra = cm.message_time(0, 1, 1 << 20);
        let inter = cm.message_time(0, 2, 1 << 20);
        assert!(inter > intra);
        assert_eq!(cm.message_time(3, 3, 1 << 20), 0.0);
    }

    #[test]
    fn external_sharers_reduce_bandwidth() {
        let m = MachineModel::cluster_node();
        let mut cm = CostModel::new(m.clone(), Placement::single_node(16, 32));
        let before = cm.effective_mem_bw(0);
        cm.add_external_sharers(0, 16);
        let after = cm.effective_mem_bw(0);
        assert!(after < before);
        assert!((after - m.node_mem_bw / 32.0).abs() < 1e-6);
    }
}
