//! Property tests for the batch scheduler: resource-safety invariants must
//! hold for arbitrary job mixes under both policies.

use pdc_cluster::slurm::{schedule_metrics, JobScript, Policy, ScheduledJob, Scheduler};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct JobSpec {
    nodes: usize,
    tasks: usize,
    runtime: f64,
    limit: f64,
    submit: f64,
    exclusive: bool,
    priority: i64,
}

fn job_strategy(max_nodes: usize, max_cores: usize) -> impl Strategy<Value = JobSpec> {
    (
        1..=max_nodes,
        1..=max_cores,
        1.0f64..200.0,
        1.0f64..250.0,
        0.0f64..100.0,
        any::<bool>(),
        -5i64..5,
    )
        .prop_map(
            |(nodes, tasks, runtime, limit, submit, exclusive, priority)| JobSpec {
                nodes,
                tasks,
                runtime,
                limit,
                submit,
                exclusive,
                priority,
            },
        )
}

/// Verify core capacity is never exceeded on any node at any instant, and
/// exclusive jobs never share.
fn check_no_oversubscription(
    schedule: &[ScheduledJob],
    nodes: usize,
    cores_per_node: usize,
) -> Result<(), String> {
    // Sweep all event boundaries.
    let mut times: Vec<f64> = schedule
        .iter()
        .flat_map(|j| [j.start_time, j.end_time])
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for &t in &times {
        // Sample just after each boundary.
        let probe = t + 1e-6;
        for node in 0..nodes {
            let active: Vec<&ScheduledJob> = schedule
                .iter()
                .filter(|j| j.start_time <= probe && probe < j.end_time && j.nodes.contains(&node))
                .collect();
            let cores: usize = active.iter().map(|j| j.script.tasks_per_node).sum();
            if cores > cores_per_node {
                return Err(format!(
                    "node {node} oversubscribed at t={probe}: {cores} cores"
                ));
            }
            if active.iter().any(|j| j.script.exclusive) && active.len() > 1 {
                return Err(format!("exclusive job shares node {node} at t={probe}"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_invariants_hold_for_any_job_mix(
        jobs in proptest::collection::vec(job_strategy(3, 16), 1..20),
        backfill in any::<bool>(),
    ) {
        let policy = if backfill { Policy::EasyBackfill } else { Policy::Fifo };
        let mut sched = Scheduler::new(3, 16, policy);
        for (i, j) in jobs.iter().enumerate() {
            sched.submit(
                JobScript::new(format!("job{i}"), j.nodes, j.tasks)
                    .with_runtime(j.runtime)
                    .with_time_limit(j.limit)
                    .submitted_at(j.submit)
                    .with_priority(j.priority)
                    .tap_exclusive(j.exclusive),
            );
        }
        let out = sched.run();
        prop_assert_eq!(out.len(), jobs.len(), "every job is scheduled exactly once");
        for j in &out {
            prop_assert!(j.start_time >= j.script.submit_time - 1e-9,
                "job started before submission");
            prop_assert!(j.end_time - j.start_time <= j.script.time_limit + 1e-9,
                "job exceeded its wall-time limit");
            prop_assert_eq!(j.nodes.len(), j.script.nodes, "allocation size");
            let mut uniq = j.nodes.clone();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), j.nodes.len(), "no duplicate nodes");
        }
        if let Err(msg) = check_no_oversubscription(&out, 3, 16) {
            prop_assert!(false, "{}", msg);
        }
        let m = schedule_metrics(&out, 3, 16);
        prop_assert!(m.utilization <= 1.0 + 1e-9, "utilization {} > 1", m.utilization);
        prop_assert!(m.makespan >= 0.0);
    }
}

/// Builder helper so the proptest can toggle exclusivity fluently.
trait TapExclusive {
    fn tap_exclusive(self, on: bool) -> Self;
}

impl TapExclusive for JobScript {
    fn tap_exclusive(self, on: bool) -> Self {
        if on {
            self.with_exclusive()
        } else {
            self
        }
    }
}
