//! Property tests for the co-scheduling model: water-filling conservation
//! and slowdown sanity for arbitrary job shapes.

use pdc_cluster::cosched::{coschedule, JobProfile};
use pdc_cluster::MachineModel;
use proptest::prelude::*;

fn job_strategy() -> impl Strategy<Value = JobProfile> {
    (1usize..16, 1.0e8f64..1.0e11, 1.0e6f64..1.0e11).prop_map(|(ranks, flops, bytes)| JobProfile {
        name: "j".into(),
        ranks,
        flops_per_rank: flops,
        bytes_per_rank: bytes,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coscheduling_never_speeds_anyone_up(a in job_strategy(), b in job_strategy()) {
        let m = MachineModel::cluster_node();
        let out = coschedule(&a, &b, &m);
        prop_assert!(out.slowdown_a >= 1.0 - 1e-9, "slowdown_a {}", out.slowdown_a);
        prop_assert!(out.slowdown_b >= 1.0 - 1e-9, "slowdown_b {}", out.slowdown_b);
        prop_assert!(out.worst().is_finite());
    }

    #[test]
    fn coscheduling_is_symmetric(a in job_strategy(), b in job_strategy()) {
        let m = MachineModel::cluster_node();
        let ab = coschedule(&a, &b, &m);
        let ba = coschedule(&b, &a, &m);
        prop_assert!((ab.slowdown_a - ba.slowdown_b).abs() < 1e-9);
        prop_assert!((ab.slowdown_b - ba.slowdown_a).abs() < 1e-9);
    }

    #[test]
    fn slowdown_is_bounded_by_fair_share(a in job_strategy(), b in job_strategy()) {
        // In the worst case a job's bandwidth halves... more precisely it
        // keeps at least node_bw/total_ranks per rank, so the memory time
        // inflates by at most (alone_bw / fair_bw). Bound loosely: the
        // slowdown can never exceed total_ranks.
        let m = MachineModel::cluster_node();
        let out = coschedule(&a, &b, &m);
        let total = (a.ranks + b.ranks) as f64;
        prop_assert!(out.worst() <= total, "worst {} > {}", out.worst(), total);
    }

    #[test]
    fn compute_bound_jobs_are_never_harmed(ranks in 1usize..16, other in job_strategy()) {
        let m = MachineModel::cluster_node();
        let c = JobProfile::compute_bound("c", ranks, 1.0e10);
        let out = coschedule(&c, &other, &m);
        prop_assert!(out.slowdown_a < 1.05,
            "a compute-bound job lost {}x to contention", out.slowdown_a);
    }
}
