//! The checker against purpose-built failing programs: one test per
//! violation class, plus sanity checks that correct programs come back
//! clean.

use pdc_check::{check_world, check_world_confirm, FindingKind, Severity};
use pdc_mpi::{Op, WorldConfig, ANY_SOURCE, ANY_TAG};
use std::time::Duration;

fn cfg(size: usize) -> WorldConfig {
    WorldConfig::new(size).with_watchdog(Some(Duration::from_millis(30)))
}

#[test]
fn clean_program_reports_no_findings() {
    let checked = check_world(cfg(4), |comm| {
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        let (got, _) = comm.sendrecv::<u64, u64>(&[comm.rank() as u64], right, 7, left, 7)?;
        let sum = comm.allreduce(&got, Op::Sum)?;
        comm.barrier()?;
        Ok(sum[0])
    });
    assert!(checked.report.is_clean(), "{}", checked.report.render());
    assert!(
        checked.report.warnings.is_empty(),
        "{}",
        checked.report.render()
    );
    let values = checked.result.expect("clean run succeeds").values;
    assert_eq!(values, vec![6, 6, 6, 6]);
}

#[test]
fn collective_name_mismatch_is_reported_with_per_rank_sites() {
    // Rank 0 enters a broadcast while rank 1 enters a reduction: the
    // classic mismatched-collective bug. Both happen to return (each
    // sends eagerly and never receives), so only the checker notices.
    let checked = check_world(cfg(2), |comm| {
        if comm.rank() == 0 {
            comm.bcast(Some(&[1.0f64]), 0)?;
        } else {
            comm.reduce(&[1.0f64], Op::Sum, 0)?;
        }
        Ok(())
    });
    let report = &checked.report;
    let finding = report
        .violations
        .iter()
        .find(|f| f.kind == FindingKind::CollectiveMismatch)
        .unwrap_or_else(|| panic!("collective mismatch detected\n{}", report.render()));
    // The diff names both calls and both call sites in this file.
    assert!(finding.message.contains("bcast"), "{}", finding.message);
    assert!(finding.message.contains("reduce"), "{}", finding.message);
    assert!(finding.message.contains("rank 0"), "{}", finding.message);
    assert!(finding.message.contains("rank 1"), "{}", finding.message);
    assert_eq!(finding.sites.len(), 2, "{}", report.render());
    for site in &finding.sites {
        assert!(site.contains("violations.rs"), "{site}");
    }
    // The stranded internal traffic corroborates as warnings.
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.kind == FindingKind::CollectiveMismatch),
        "{}",
        report.render()
    );
}

#[test]
fn collective_root_mismatch_is_reported() {
    let checked = check_world(cfg(2), |comm| {
        let root = comm.rank(); // BUG: roots must agree
        comm.bcast(Some(&[comm.rank() as u64]), root)?;
        Ok(())
    });
    let finding = checked
        .report
        .violations
        .iter()
        .find(|f| f.kind == FindingKind::CollectiveMismatch)
        .unwrap_or_else(|| panic!("root mismatch detected\n{}", checked.report.render()));
    assert!(finding.message.contains("root=0"), "{}", finding.message);
    assert!(finding.message.contains("root=1"), "{}", finding.message);
}

#[test]
fn collective_count_mismatch_is_reported() {
    let checked = check_world(cfg(2), |comm| {
        // BUG: gather requires equal contributions.
        let mine = vec![1.0f64; 1 + comm.rank()];
        let _ = comm.gather(&mine, 0);
        Ok(())
    });
    let finding = checked
        .report
        .violations
        .iter()
        .find(|f| f.kind == FindingKind::CollectiveMismatch)
        .unwrap_or_else(|| panic!("count mismatch detected\n{}", checked.report.render()));
    assert!(finding.message.contains("count=1"), "{}", finding.message);
    assert!(finding.message.contains("count=2"), "{}", finding.message);
}

#[test]
fn deadlock_is_explained_with_a_wait_for_cycle() {
    // Synchronous-send ring: every rank ssends right before receiving.
    let checked = check_world(cfg(3), |comm| {
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        comm.ssend(&[comm.rank() as u64], right, 0)?;
        let (v, _) = comm.recv::<u64>(left, 0)?;
        Ok(v[0])
    });
    assert!(checked.result.is_err(), "ring must deadlock");
    let finding = checked
        .report
        .violations
        .iter()
        .find(|f| f.kind == FindingKind::Deadlock)
        .unwrap_or_else(|| panic!("deadlock reported\n{}", checked.report.render()));
    assert_eq!(finding.ranks, vec![0, 1, 2]);
    assert!(
        finding.message.contains("wait-for cycle"),
        "{}",
        finding.message
    );
    assert!(finding.message.contains("ssend"), "{}", finding.message);
    // Every blocked call points back into this test file.
    assert_eq!(finding.sites.len(), 3);
    for site in &finding.sites {
        assert!(site.contains("violations.rs"), "{site}");
    }
}

#[test]
fn confirmed_message_race_is_upgraded_to_violation() {
    // Ranks 1 and 2 both send to rank 0, which receives with ANY_SOURCE.
    // The barrier guarantees both messages are in flight before the first
    // receive, so the match is genuinely order-dependent; rank 1's send
    // carries a later simulated timestamp so the unperturbed baseline is
    // deterministic (rank 2 wins).
    let program = |comm: &mut pdc_mpi::Comm| -> pdc_mpi::Result<u64> {
        if comm.rank() == 0 {
            comm.barrier()?;
            let (a, _) = comm.recv::<u64>(ANY_SOURCE, ANY_TAG)?;
            let (b, _) = comm.recv::<u64>(ANY_SOURCE, ANY_TAG)?;
            Ok(a[0] * 10 + b[0])
        } else {
            if comm.rank() == 1 {
                comm.charge_flops(1.0e9);
            }
            comm.send(&[comm.rank() as u64], 0, 0)?;
            comm.barrier()?;
            Ok(0)
        }
    };
    let checked = check_world_confirm(cfg(3), program, &(1..=16).collect::<Vec<u64>>());
    let finding = checked
        .report
        .violations
        .iter()
        .find(|f| f.kind == FindingKind::MessageRace)
        .unwrap_or_else(|| panic!("race confirmed\n{}", checked.report.render()));
    assert_eq!(finding.severity, Severity::Error);
    assert!(finding.message.contains("CONFIRMED"), "{}", finding.message);
    assert!(finding.message.contains("in flight"), "{}", finding.message);
    assert_eq!(finding.sites.len(), 1);
    assert!(
        finding.sites[0].contains("violations.rs"),
        "{:?}",
        finding.sites
    );
}

#[test]
fn order_independent_wildcard_fan_in_stays_a_warning() {
    // Same shape, but the received values are summed: any delivery order
    // produces the same result, so perturbation cannot confirm a race.
    let program = |comm: &mut pdc_mpi::Comm| -> pdc_mpi::Result<u64> {
        if comm.rank() == 0 {
            comm.barrier()?;
            let (a, _) = comm.recv::<u64>(ANY_SOURCE, ANY_TAG)?;
            let (b, _) = comm.recv::<u64>(ANY_SOURCE, ANY_TAG)?;
            Ok(a[0] + b[0])
        } else {
            comm.send(&[comm.rank() as u64], 0, 0)?;
            comm.barrier()?;
            Ok(0)
        }
    };
    let checked = check_world_confirm(cfg(3), program, &[1, 2, 3, 4]);
    assert!(checked.report.is_clean(), "{}", checked.report.render());
    let warning = checked
        .report
        .warnings
        .iter()
        .find(|f| f.kind == FindingKind::MessageRace)
        .unwrap_or_else(|| panic!("candidate race noted\n{}", checked.report.render()));
    assert!(
        warning.message.contains("not confirmed"),
        "{}",
        warning.message
    );
}

#[test]
fn unmatched_send_and_request_leak_are_reported_at_finalize() {
    let checked = check_world(cfg(2), |comm| {
        if comm.rank() == 0 {
            // BUG: nobody ever receives this.
            comm.send(&[9.0f64, 9.0], 1, 42)?;
            // BUG: the request is dropped without a wait.
            let _req = comm.isend(&[1u8], 1, 43)?;
        }
        Ok(())
    });
    assert!(
        checked.result.is_ok(),
        "the program itself runs to completion"
    );
    let report = &checked.report;
    let unmatched = report
        .violations
        .iter()
        .find(|f| f.kind == FindingKind::UnmatchedSend && f.message.contains("tag 42"))
        .unwrap_or_else(|| panic!("unmatched send detected\n{}", report.render()));
    assert_eq!(unmatched.ranks, vec![0, 1]);
    assert!(
        unmatched.message.contains("16 bytes"),
        "{}",
        unmatched.message
    );
    assert!(
        unmatched.sites[0].contains("violations.rs"),
        "{:?}",
        unmatched.sites
    );
    let leak = report
        .violations
        .iter()
        .find(|f| f.kind == FindingKind::RequestLeak)
        .unwrap_or_else(|| panic!("request leak detected\n{}", report.render()));
    assert!(leak.message.contains("isend"), "{}", leak.message);
    // The leaked isend's payload is also an unmatched send.
    assert!(
        report
            .violations
            .iter()
            .any(|f| f.kind == FindingKind::UnmatchedSend && f.message.contains("tag 43")),
        "{}",
        report.render()
    );
}

#[test]
fn type_mismatch_is_reported_with_both_types() {
    let checked = check_world(cfg(2), |comm| {
        if comm.rank() == 0 {
            comm.send(&[1.0f64], 1, 0)?;
            Ok(0)
        } else {
            let (v, _) = comm.recv::<i32>(0, 0)?; // BUG: wrong element type
            Ok(v[0])
        }
    });
    assert!(checked.result.is_err(), "the runtime rejects the decode");
    let finding = checked
        .report
        .violations
        .iter()
        .find(|f| f.kind == FindingKind::TypeMismatch)
        .unwrap_or_else(|| panic!("type mismatch detected\n{}", checked.report.render()));
    assert!(finding.message.contains("f64"), "{}", finding.message);
    assert!(finding.message.contains("i32"), "{}", finding.message);
}

#[test]
fn sub_communicator_collectives_are_matched_per_communicator() {
    // Split 4 ranks into two halves. Both halves run a sub_allreduce —
    // but one member of the second half uses the wrong operator.
    let checked = check_world(cfg(4), |comm| {
        let mut half = comm.split((comm.rank() / 2) as u32, 0)?;
        let op = if comm.rank() == 3 { Op::Max } else { Op::Sum }; // BUG
        let _ = comm.sub_allreduce(&mut half, &[1.0f64], op);
        Ok(())
    });
    let finding = checked
        .report
        .violations
        .iter()
        .find(|f| f.kind == FindingKind::CollectiveMismatch)
        .unwrap_or_else(|| panic!("sub-comm mismatch detected\n{}", checked.report.render()));
    assert!(
        finding.message.contains("sub-communicator"),
        "{}",
        finding.message
    );
    assert!(finding.message.contains("op=Sum"), "{}", finding.message);
    assert!(finding.message.contains("op=Max"), "{}", finding.message);
    // Only the offending half is implicated.
    assert!(finding.message.contains("rank 2"), "{}", finding.message);
    assert!(!finding.message.contains("rank 0:"), "{}", finding.message);
}

#[test]
fn machine_readable_report_roundtrips() {
    let checked = check_world(cfg(2), |comm| {
        if comm.rank() == 0 {
            comm.send(&[1u8], 1, 5)?;
        }
        Ok(())
    });
    let json = checked.report.to_json();
    let parsed: pdc_check::Report = serde_json::from_str(&json).expect("report parses");
    assert_eq!(parsed, checked.report);
    assert!(json.contains("\"UnmatchedSend\""), "{json}");
}
