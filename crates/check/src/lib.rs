//! # pdc-check — a MUST-style MPI correctness checker
//!
//! MPI correctness tools such as MUST, ISP, and Marmot verify
//! *executions*: the runtime records what every rank actually did, and an
//! offline analysis flags behaviour that violates MPI semantics even when
//! the run appeared to succeed. This crate is that analysis layer for the
//! `pdc-mpi` runtime, covering four violation classes:
//!
//! * **collective matching** — every member of a communicator must issue
//!   the same sequence of collectives with compatible roots, operators,
//!   contribution counts, and element types; mismatches are reported as a
//!   per-rank call-site diff ([`FindingKind::CollectiveMismatch`]);
//! * **deadlock explanation** — a deadlocked run carries the watchdog's
//!   wait-for graph and cycle ([`FindingKind::Deadlock`]);
//! * **message races** — `ANY_SOURCE`/`ANY_TAG` receives whose match was
//!   order-dependent (more than one candidate in flight), optionally
//!   *confirmed* by re-executing under perturbed delivery and comparing
//!   results ([`FindingKind::MessageRace`]);
//! * **leaks** — messages sent but never received, nonblocking requests
//!   never completed, and datatype mismatches, checked when every rank
//!   has finished ([`FindingKind::UnmatchedSend`],
//!   [`FindingKind::RequestLeak`], [`FindingKind::TypeMismatch`]);
//! * **fault attribution** — faults injected by a
//!   [`FaultPlan`](pdc_mpi::FaultPlan) (crashes, drops, duplicates,
//!   delays) are listed in a separate report section
//!   ([`FindingKind::InjectedFault`], [`Report::faults`]), and violations
//!   they plausibly explain are downgraded to annotated warnings — a
//!   fault-injection clinic must not report its own faults as bugs.
//!
//! ## Usage
//!
//! ```
//! use pdc_check::check_world;
//! use pdc_mpi::{Op, WorldConfig};
//!
//! let checked = check_world(WorldConfig::new(4), |comm| {
//!     let mine = [comm.rank() as u64];
//!     comm.allreduce(&mine, Op::Sum)
//! });
//! assert!(checked.report.is_clean(), "{}", checked.report.render());
//! ```
//!
//! Reports render for humans ([`Report::render`]) and machines
//! ([`Report::to_json`]); see `docs/checker.md` for worked examples of
//! each violation class.

#![warn(missing_docs)]

mod analysis;
mod report;

pub use analysis::analyze;
pub use report::{Finding, FindingKind, Report, Severity};

use pdc_mpi::{CheckMode, Comm, World, WorldConfig};

/// A checked execution: the world's ordinary outcome plus the checker's
/// verdict on it.
#[derive(Debug)]
pub struct Checked<T> {
    /// What [`World::run`] would have returned.
    pub result: pdc_mpi::Result<pdc_mpi::RunOutput<T>>,
    /// The checker's findings over the recorded execution.
    pub report: Report,
}

impl<T> Checked<T> {
    /// The per-rank values of a run that must both succeed and check
    /// clean — the common assertion in module tests.
    ///
    /// # Panics
    /// Panics (with the rendered report) if the run failed or any
    /// violation was found.
    pub fn expect_clean(self, what: &str) -> Vec<T> {
        match self.result {
            Ok(out) if self.report.is_clean() => out.values,
            Ok(_) => panic!("{what}: checker found violations\n{}", self.report.render()),
            Err(e) => panic!("{what}: run failed: {e}\n{}", self.report.render()),
        }
    }
}

/// Run `f` on a world with recording instrumentation and analyse the
/// execution. The configured [`CheckMode`] is overridden to `Record`.
pub fn check_world<T, F>(cfg: WorldConfig, f: F) -> Checked<T>
where
    T: Send,
    F: Fn(&mut Comm) -> pdc_mpi::Result<T> + Send + Sync,
{
    let (result, logs) = World::run_with_check(cfg.with_check(CheckMode::Record), f);
    let report = analyze(&result, &logs);
    Checked { result, report }
}

/// Like [`check_world`], but *confirm* message-race candidates by
/// re-executing under perturbed wildcard delivery with each seed and
/// comparing per-rank results against the recorded baseline. A candidate
/// race whose perturbation changes results (or breaks the run) is
/// upgraded from warning to violation; an unconfirmed candidate stays a
/// warning with a note.
pub fn check_world_confirm<T, F>(cfg: WorldConfig, f: F, seeds: &[u64]) -> Checked<T>
where
    T: Send + PartialEq,
    F: Fn(&mut Comm) -> pdc_mpi::Result<T> + Send + Sync,
{
    let (result, logs) = World::run_with_check(cfg.clone().with_check(CheckMode::Record), &f);
    let mut report = analyze(&result, &logs);

    let candidates: Vec<usize> = report
        .warnings
        .iter()
        .enumerate()
        .filter(|(_, w)| w.kind == FindingKind::MessageRace)
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return Checked { result, report };
    }

    let mut confirmation: Option<String> = None;
    for &seed in seeds {
        let (perturbed, _) =
            World::run_with_check::<T, _>(cfg.clone().with_check(CheckMode::Perturb(seed)), &f);
        match (&result, &perturbed) {
            (Ok(base), Ok(other)) if base.values != other.values => {
                confirmation = Some(format!(
                    "CONFIRMED: perturbed delivery (seed {seed}) changed per-rank results"
                ));
                break;
            }
            (Ok(_), Err(e)) => {
                confirmation = Some(format!(
                    "CONFIRMED: perturbed delivery (seed {seed}) broke the run: {e}"
                ));
                break;
            }
            _ => {}
        }
    }

    match confirmation {
        Some(note) => {
            // Drain the race warnings (in reverse so indices stay valid)
            // and re-file them as violations.
            for &i in candidates.iter().rev() {
                let mut f = report.warnings.remove(i);
                f.severity = Severity::Error;
                f.message.push('\n');
                f.message.push_str(&note);
                report.violations.push(f);
            }
        }
        None => {
            for &i in &candidates {
                report.warnings[i].message.push_str(&format!(
                    "\nnot confirmed: {} perturbed run(s) reproduced the baseline results",
                    seeds.len()
                ));
            }
        }
    }
    Checked { result, report }
}
