//! The checker's output: a machine-readable [`Report`] of findings with a
//! human rendering.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of a finding — the four violation classes of the
/// checker, plus the runtime type check it piggybacks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindingKind {
    /// Ranks disagreed on the sequence of collective operations (name,
    /// root, operator, contribution count, or element type).
    CollectiveMismatch,
    /// The run deadlocked; the finding carries the watchdog's wait-for
    /// analysis.
    Deadlock,
    /// A wildcard receive had more than one matching message in flight:
    /// its result depends on delivery order.
    MessageRace,
    /// A message was sent but never received.
    UnmatchedSend,
    /// A nonblocking request was created but never completed.
    RequestLeak,
    /// A receive's element type differed from the message's.
    TypeMismatch,
    /// A fault deliberately injected by the run's
    /// [`FaultPlan`](pdc_mpi::FaultPlan) — reported separately so injected
    /// failures are never mistaken for application defects.
    InjectedFault,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FindingKind::CollectiveMismatch => "collective mismatch",
            FindingKind::Deadlock => "deadlock",
            FindingKind::MessageRace => "message race",
            FindingKind::UnmatchedSend => "unmatched send",
            FindingKind::RequestLeak => "request leak",
            FindingKind::TypeMismatch => "type mismatch",
            FindingKind::InjectedFault => "injected fault",
        };
        f.write_str(s)
    }
}

/// How certain the checker is that a finding is a genuine defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// Definite violation of MPI semantics.
    Error,
    /// Suspicious but possibly benign (e.g. an order-dependent wildcard
    /// match whose perturbation has not been shown to change results, or
    /// leftovers in a run that already failed for another reason).
    Warning,
}

/// One finding in a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// What class of defect this is.
    pub kind: FindingKind,
    /// Error or warning.
    pub severity: Severity,
    /// World ranks involved, sorted.
    pub ranks: Vec<usize>,
    /// Human explanation (possibly multi-line, e.g. a per-rank diff or a
    /// rendered wait-for cycle).
    pub message: String,
    /// Call sites involved, rendered as `file:line` (one per implicated
    /// call, ordered to match the message).
    pub sites: Vec<String>,
}

/// Everything the checker concluded about one execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Number of ranks in the checked world.
    pub world_size: usize,
    /// Definite violations (severity [`Severity::Error`]).
    pub violations: Vec<Finding>,
    /// Possible problems (severity [`Severity::Warning`]).
    pub warnings: Vec<Finding>,
    /// Faults injected by the run's fault plan
    /// ([`FindingKind::InjectedFault`]) — deliberate, not defects. Kept
    /// out of `violations`/`warnings` so fault-injection runs can still
    /// check clean.
    pub faults: Vec<Finding>,
}

impl Report {
    /// No violations found (warnings are allowed: a clean report may still
    /// carry advisory findings).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Add a finding to the matching list.
    pub fn push(&mut self, finding: Finding) {
        if finding.kind == FindingKind::InjectedFault {
            self.faults.push(finding);
            return;
        }
        match finding.severity {
            Severity::Error => self.violations.push(finding),
            Severity::Warning => self.warnings.push(finding),
        }
    }

    /// Machine-readable JSON rendering.
    ///
    /// # Panics
    /// Never panics: every report field serializes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Human rendering: a verdict line followed by every finding.
    pub fn render(&self) -> String {
        let mut out = format!(
            "pdc-check: {} violation(s), {} warning(s)",
            self.violations.len(),
            self.warnings.len(),
        );
        if !self.faults.is_empty() {
            out.push_str(&format!(", {} injected fault(s)", self.faults.len()));
        }
        out.push_str(&format!(" over {} rank(s)\n", self.world_size));
        for (label, list) in [
            ("VIOLATION", &self.violations),
            ("warning", &self.warnings),
            ("injected", &self.faults),
        ] {
            for (i, f) in list.iter().enumerate() {
                out.push_str(&format!("{label} {} [{}]", i + 1, f.kind));
                if !f.ranks.is_empty() {
                    let ranks: Vec<String> = f.ranks.iter().map(|r| r.to_string()).collect();
                    out.push_str(&format!(" ranks {}", ranks.join(",")));
                }
                out.push('\n');
                for line in f.message.lines() {
                    out.push_str(&format!("  {line}\n"));
                }
                for site in &f.sites {
                    out.push_str(&format!("  at {site}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut report = Report {
            world_size: 4,
            ..Report::default()
        };
        report.push(Finding {
            kind: FindingKind::UnmatchedSend,
            severity: Severity::Error,
            ranks: vec![0, 3],
            message: "message from rank 0 never received".into(),
            sites: vec!["m.rs:10".into()],
        });
        report.push(Finding {
            kind: FindingKind::MessageRace,
            severity: Severity::Warning,
            ranks: vec![1],
            message: "2 candidates".into(),
            sites: vec![],
        });
        report.push(Finding {
            kind: FindingKind::InjectedFault,
            severity: Severity::Warning,
            ranks: vec![2],
            message: "rank 2 crashed at simulated time 0.5s".into(),
            sites: vec![],
        });
        report
    }

    #[test]
    fn push_routes_by_severity() {
        let r = sample();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.warnings.len(), 1);
        assert!(!r.is_clean());
        assert!(Report::default().is_clean());
    }

    #[test]
    fn injected_faults_live_in_their_own_section() {
        let r = sample();
        assert_eq!(r.faults.len(), 1);
        // Injected faults do not make a report dirty...
        let mut only_faults = Report {
            world_size: 2,
            ..Report::default()
        };
        only_faults.push(Finding {
            kind: FindingKind::InjectedFault,
            severity: Severity::Warning,
            ranks: vec![0],
            message: "drop".into(),
            sites: vec![],
        });
        assert!(only_faults.is_clean());
        // ...but they do render, with their own verdict clause.
        let s = r.render();
        assert!(s.contains("1 injected fault(s)"), "{s}");
        assert!(s.contains("injected 1 [injected fault] ranks 2"), "{s}");
    }

    #[test]
    fn render_mentions_kinds_ranks_and_sites() {
        let s = sample().render();
        assert!(s.contains("1 violation(s), 1 warning(s)"), "{s}");
        assert!(s.contains("unmatched send"), "{s}");
        assert!(s.contains("ranks 0,3"), "{s}");
        assert!(s.contains("at m.rs:10"), "{s}");
        assert!(s.contains("message race"), "{s}");
    }

    #[test]
    fn json_roundtrips() {
        let r = sample();
        let json = r.to_json();
        let back: Report = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, r);
        assert!(json.contains("\"UnmatchedSend\""), "{json}");
    }
}
