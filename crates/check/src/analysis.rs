//! The analyses over recorded executions: collective matching, deadlock
//! explanation, message-race candidates, finalize-time leaks, and
//! injected-fault attribution.

use crate::report::{Finding, FindingKind, Report, Severity};
use pdc_mpi::{CheckEvent, Error, RunOutput};
use std::collections::{BTreeMap, BTreeSet};

/// Analyse one execution: the world's outcome plus the per-rank event
/// logs from [`pdc_mpi::World::run_with_check`].
pub fn analyze<T>(outcome: &pdc_mpi::Result<RunOutput<T>>, logs: &[Vec<CheckEvent>]) -> Report {
    let mut report = Report {
        world_size: logs.len(),
        ..Report::default()
    };
    // A failed run legitimately truncates logs and strands messages, so
    // most leak/length findings downgrade to warnings there; genuine
    // semantic mismatches (collective prefix divergence, type errors)
    // stay violations regardless.
    let completed = outcome.is_ok();
    if let Err(Error::Deadlock(info)) = outcome {
        let mut ranks: Vec<usize> = info.blocked.iter().map(|b| b.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        report.push(Finding {
            kind: FindingKind::Deadlock,
            severity: Severity::Error,
            ranks,
            message: if info.is_empty() {
                "the watchdog observed no progress but captured no blocked operations".into()
            } else {
                info.render().trim_end().to_string()
            },
            sites: info.blocked.iter().map(|b| b.site.to_string()).collect(),
        });
    }
    check_collectives(logs, completed, &mut report);
    check_races(logs, &mut report);
    check_leaks(logs, completed, &mut report);
    let (crashed, lossy) = check_faults(logs, &mut report);
    attribute_to_faults(&mut report, &crashed, lossy);
    report
}

/// Summarise the faults the run's plan injected: one finding per crash,
/// one aggregate finding per message-fault kind. Returns the crashed
/// ranks and whether any message was dropped, for attribution.
fn check_faults(logs: &[Vec<CheckEvent>], report: &mut Report) -> (BTreeSet<usize>, bool) {
    let mut crashed = BTreeSet::new();
    // kind -> (ranks touched, event count).
    let mut by_kind: BTreeMap<&'static str, (BTreeSet<usize>, usize)> = BTreeMap::new();
    for (rank, log) in logs.iter().enumerate() {
        for ev in log {
            if let CheckEvent::FaultInjected {
                kind, src, dst, at, ..
            } = ev
            {
                if *kind == "crash" {
                    crashed.insert(rank);
                    report.push(Finding {
                        kind: FindingKind::InjectedFault,
                        severity: Severity::Warning,
                        ranks: vec![rank],
                        message: format!(
                            "rank {rank} crashed at simulated time {at:.6}s \
                             (scheduled by the fault plan)"
                        ),
                        sites: Vec::new(),
                    });
                } else {
                    let entry = by_kind.entry(kind).or_insert((BTreeSet::new(), 0));
                    entry.0.insert(*src);
                    entry.0.insert(*dst);
                    entry.1 += 1;
                }
            }
        }
    }
    let lossy = by_kind.contains_key("drop") || by_kind.contains_key("lost");
    for (kind, (ranks, count)) in by_kind {
        report.push(Finding {
            kind: FindingKind::InjectedFault,
            severity: Severity::Warning,
            ranks: ranks.into_iter().collect(),
            message: format!(
                "{count} message-{kind} event(s) injected by the fault plan \
                 (deliberate, not an application defect)"
            ),
            sites: Vec::new(),
        });
    }
    (crashed, lossy)
}

/// Downgrade violations that injected faults plausibly explain: a
/// deadlock under message loss or a crash, and stranded state (unmatched
/// sends, leaked requests, collective divergence) involving a crashed
/// rank. They stay visible as warnings, annotated — the checker's job in
/// a fault clinic is to separate injected failures from genuine defects,
/// not to hide either.
fn attribute_to_faults(report: &mut Report, crashed: &BTreeSet<usize>, lossy: bool) {
    if crashed.is_empty() && !lossy {
        return;
    }
    let mut keep = Vec::new();
    for mut f in std::mem::take(&mut report.violations) {
        let explained = match f.kind {
            FindingKind::Deadlock => lossy || !crashed.is_empty(),
            FindingKind::UnmatchedSend
            | FindingKind::RequestLeak
            | FindingKind::CollectiveMismatch => f.ranks.iter().any(|r| crashed.contains(r)),
            _ => false,
        };
        if explained {
            f.severity = Severity::Warning;
            f.message.push_str(
                "\nlikely fallout of an injected fault (see the injected section), \
                 not necessarily an application defect",
            );
            report.warnings.push(f);
        } else {
            keep.push(f);
        }
    }
    report.violations = keep;
}

/// A rank's view of one collective entry, flattened for comparison.
struct CollEntry {
    name: &'static str,
    root: Option<usize>,
    op: Option<pdc_mpi::Op>,
    count: Option<usize>,
    type_name: &'static str,
    site: String,
}

impl CollEntry {
    fn describe(&self) -> String {
        let mut s = format!("{}(", self.name);
        let mut parts = Vec::new();
        if let Some(r) = self.root {
            parts.push(format!("root={r}"));
        }
        if let Some(op) = self.op {
            parts.push(format!("op={op:?}"));
        }
        if let Some(c) = self.count {
            parts.push(format!("count={c}"));
        }
        parts.push(self.type_name.to_string());
        s.push_str(&parts.join(", "));
        s.push(')');
        s
    }

    /// Do two ranks' entries at the same position agree? Counts only
    /// conflict when both sides supplied one (non-root `bcast`/`scatter`
    /// participants and `*v` variants record `None`).
    fn compatible(&self, other: &Self) -> bool {
        self.name == other.name
            && self.root == other.root
            && self.op == other.op
            && self.type_name == other.type_name
            && match (self.count, other.count) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    }
}

/// Collective matching: on every communicator, all members must issue the
/// same sequence of collectives with compatible arguments.
fn check_collectives(logs: &[Vec<CheckEvent>], completed: bool, report: &mut Report) {
    // (ctx, members) -> rank -> that rank's collective entries on the
    // communicator, in program order. The member list is part of the key
    // because one `split` call creates several *disjoint* communicators
    // that share a ctx id (each rank allocates the id locally).
    type CommKey = (u64, Vec<usize>);
    let mut by_comm: BTreeMap<CommKey, BTreeMap<usize, Vec<CollEntry>>> = BTreeMap::new();
    for (rank, log) in logs.iter().enumerate() {
        for ev in log {
            if let CheckEvent::Collective {
                name,
                ctx,
                members,
                root,
                op,
                count,
                type_name,
                site,
            } = ev
            {
                let key = (*ctx, members.clone().unwrap_or_default());
                by_comm
                    .entry(key)
                    .or_default()
                    .entry(rank)
                    .or_default()
                    .push(CollEntry {
                        name,
                        root: *root,
                        op: *op,
                        count: *count,
                        type_name,
                        site: site.to_string(),
                    });
            }
        }
    }
    for ((ctx, members), by_rank) in &by_comm {
        // Expected participants: every world rank for the world
        // communicator, the recorded member list for a sub-communicator.
        let participants: Vec<usize> = if *ctx == 0 {
            (0..logs.len()).collect()
        } else {
            let mut set: BTreeSet<usize> = by_rank.keys().copied().collect();
            set.extend(members.iter().copied());
            set.into_iter().collect()
        };
        let len = |rank: usize| by_rank.get(&rank).map_or(0, Vec::len);
        let min_len = participants.iter().map(|&r| len(r)).min().unwrap_or(0);

        // Compare the common prefix position by position; one finding per
        // communicator (later mismatches are usually cascade noise).
        let mut diverged = false;
        // Position `i` is compared across *all* ranks' sequences at once,
        // so indexing, not iteration, is the natural shape here.
        #[allow(clippy::needless_range_loop)]
        'scan: for i in 0..min_len {
            let mut iter = participants.iter().map(|&r| (r, &by_rank[&r][i]));
            let (first_rank, first) = iter.next().expect("at least one participant");
            for (rank, entry) in iter {
                if !entry.compatible(first) {
                    let mut lines = vec![format!(
                        "collective #{} on {} diverges:",
                        i + 1,
                        ctx_name(*ctx, members)
                    )];
                    let mut sites = Vec::new();
                    for &r in &participants {
                        let e = &by_rank[&r][i];
                        lines.push(format!("  rank {r}: {} at {}", e.describe(), e.site));
                        sites.push(e.site.clone());
                    }
                    report.push(Finding {
                        kind: FindingKind::CollectiveMismatch,
                        severity: Severity::Error,
                        ranks: vec![first_rank, rank],
                        message: lines.join("\n"),
                        sites,
                    });
                    diverged = true;
                    break 'scan;
                }
            }
        }

        // Length disagreement is only meaningful when the run completed —
        // a deadlocked rank stops wherever it stops.
        if completed && !diverged {
            let max_len = participants.iter().map(|&r| len(r)).max().unwrap_or(0);
            if max_len != min_len {
                let counts: Vec<String> = participants
                    .iter()
                    .map(|&r| format!("rank {r}: {}", len(r)))
                    .collect();
                // Point at the first call the shorter ranks never made.
                let sites: Vec<String> = participants
                    .iter()
                    .filter_map(|&r| by_rank.get(&r).and_then(|s| s.get(min_len)))
                    .map(|e| e.site.clone())
                    .collect();
                report.push(Finding {
                    kind: FindingKind::CollectiveMismatch,
                    severity: Severity::Error,
                    ranks: participants.clone(),
                    message: format!(
                        "ranks disagree on the number of collectives on {} ({})",
                        ctx_name(*ctx, members),
                        counts.join(", ")
                    ),
                    sites,
                });
            }
        }
    }
}

fn ctx_name(ctx: u64, members: &[usize]) -> String {
    if ctx == 0 {
        "the world communicator".into()
    } else {
        let list: Vec<String> = members.iter().map(|r| r.to_string()).collect();
        format!("sub-communicator #{ctx} {{{}}}", list.join(","))
    }
}

/// Message-race candidates: wildcard receives whose match was
/// order-dependent (more than one matching message in flight). Reported
/// per receive site, as warnings until a perturbed re-execution confirms
/// the race changes results.
fn check_races(logs: &[Vec<CheckEvent>], report: &mut Report) {
    // site -> (receiving ranks, occurrences, max in-flight candidates).
    let mut by_site: BTreeMap<String, (BTreeSet<usize>, usize, usize)> = BTreeMap::new();
    for (rank, log) in logs.iter().enumerate() {
        for ev in log {
            if let CheckEvent::RecvCompleted {
                wildcard_src,
                wildcard_tag,
                candidates,
                site,
                ..
            } = ev
            {
                if (*wildcard_src || *wildcard_tag) && *candidates > 1 {
                    let entry = by_site
                        .entry(site.to_string())
                        .or_insert((BTreeSet::new(), 0, 0));
                    entry.0.insert(rank);
                    entry.1 += 1;
                    entry.2 = entry.2.max(*candidates);
                }
            }
        }
    }
    for (site, (ranks, occurrences, max_candidates)) in by_site {
        report.push(Finding {
            kind: FindingKind::MessageRace,
            severity: Severity::Warning,
            ranks: ranks.into_iter().collect(),
            message: format!(
                "wildcard receive is order-dependent: {occurrences} match(es) with up to \
                 {max_candidates} messages in flight; which message wins depends on delivery order"
            ),
            sites: vec![site],
        });
    }
}

/// Finalize-time leak check: unmatched sends, never-completed requests,
/// and datatype mismatches observed at receives.
fn check_leaks(logs: &[Vec<CheckEvent>], completed: bool, report: &mut Report) {
    let leak_severity = if completed {
        Severity::Error
    } else {
        // The run already failed; stranded state is expected fallout.
        Severity::Warning
    };
    for (rank, log) in logs.iter().enumerate() {
        // Requests created but never completed on this rank.
        let mut open: BTreeMap<u64, (&'static str, String)> = BTreeMap::new();
        for ev in log {
            match ev {
                CheckEvent::RequestCreated { id, kind, site } => {
                    open.insert(*id, (kind, site.to_string()));
                }
                CheckEvent::RequestCompleted { id } => {
                    open.remove(id);
                }
                CheckEvent::RecvCompleted {
                    src,
                    tag,
                    expected_type,
                    found_type,
                    site,
                    ..
                } if expected_type != found_type => {
                    report.push(Finding {
                        kind: FindingKind::TypeMismatch,
                        severity: Severity::Error,
                        ranks: vec![*src, rank],
                        message: format!(
                            "rank {rank} received {found_type} from rank {src} (tag {tag}) \
                             where {expected_type} was expected"
                        ),
                        sites: vec![site.to_string()],
                    });
                }
                CheckEvent::Leftover {
                    src,
                    user,
                    tag,
                    bytes,
                    seq,
                    type_name,
                } => {
                    if *user {
                        // Pair the stranded message back to the sender's
                        // posting site through its sequence number.
                        let posted = logs.get(*src).and_then(|slog| {
                            slog.iter().find_map(|e| match e {
                                CheckEvent::SendPosted {
                                    dst, seq: s, site, ..
                                } if *dst == rank && s == seq => Some(site.to_string()),
                                _ => None,
                            })
                        });
                        report.push(Finding {
                            kind: FindingKind::UnmatchedSend,
                            severity: leak_severity,
                            ranks: vec![*src, rank],
                            message: format!(
                                "message from rank {src} to rank {rank} (tag {tag}, {bytes} \
                                 bytes, {type_name}) was never received"
                            ),
                            sites: posted.into_iter().collect(),
                        });
                    } else if completed {
                        report.push(Finding {
                            kind: FindingKind::CollectiveMismatch,
                            severity: Severity::Warning,
                            ranks: vec![*src, rank],
                            message: format!(
                                "internal collective message from rank {src} (tag {tag:#x}, \
                                 {bytes} bytes, {type_name}) was stranded in rank {rank}'s \
                                 mailbox — a collective mismatch left traffic behind"
                            ),
                            sites: Vec::new(),
                        });
                    }
                }
                _ => {}
            }
        }
        for (id, (kind, site)) in open {
            report.push(Finding {
                kind: FindingKind::RequestLeak,
                severity: leak_severity,
                ranks: vec![rank],
                message: format!(
                    "rank {rank} {kind} request #{id} was never completed (missing wait/test)"
                ),
                sites: vec![site],
            });
        }
    }
}
