//! Property tests for the dataset generators: range, determinism, and
//! distribution-shape invariants the modules rely on.

use pdc_datagen::{
    asteroid_catalog, exponential_f64, gaussian_mixture, random_range_queries, uniform_f64,
    uniform_points,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn uniform_respects_bounds_and_seed(
        n in 0usize..2000,
        lo in -100.0f64..100.0,
        width in 0.001f64..200.0,
        seed in 0u64..1000,
    ) {
        let hi = lo + width;
        let a = uniform_f64(n, lo, hi, seed);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.iter().all(|&x| (lo..hi).contains(&x)));
        prop_assert_eq!(a, uniform_f64(n, lo, hi, seed));
    }

    #[test]
    fn exponential_is_nonnegative_with_plausible_mean(
        lambda in 0.01f64..10.0,
        seed in 0u64..1000,
    ) {
        let a = exponential_f64(5000, lambda, seed);
        prop_assert!(a.iter().all(|&x| x >= 0.0));
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        let expected = 1.0 / lambda;
        prop_assert!((mean - expected).abs() < expected * 0.2,
            "mean {} vs 1/λ {}", mean, expected);
    }

    #[test]
    fn points_are_rectangular_and_deterministic(
        n in 0usize..300,
        dim in 1usize..8,
        seed in 0u64..1000,
    ) {
        let d = uniform_points(n, dim, -1.0, 1.0, seed);
        prop_assert_eq!(d.len(), n);
        prop_assert_eq!(d.dim(), dim);
        prop_assert_eq!(d.flat().len(), n * dim);
        prop_assert_eq!(d.clone(), uniform_points(n, dim, -1.0, 1.0, seed));
    }

    #[test]
    fn mixture_labels_are_consistent(
        n in 1usize..300,
        k in 1usize..8,
        seed in 0u64..500,
    ) {
        let k = k.min(n);
        let lm = gaussian_mixture(n, 2, k, 50.0, 0.5, seed);
        prop_assert_eq!(lm.labels.len(), n);
        prop_assert!(lm.labels.iter().all(|&l| l < k));
        prop_assert_eq!(lm.centers.len(), k);
        // Round-robin assignment balances to within one point.
        for c in 0..k {
            let count = lm.labels.iter().filter(|&&l| l == c).count();
            prop_assert!((count as i64 - (n / k) as i64).abs() <= 1);
        }
    }

    #[test]
    fn catalog_and_queries_are_compatible(
        n in 1usize..2000,
        frac in 0.01f64..1.0,
        seed in 0u64..500,
    ) {
        let cat = asteroid_catalog(n, seed);
        let qs = random_range_queries(20, frac, seed + 1);
        for (lo, hi) in qs {
            prop_assert!(lo[0] <= hi[0] && lo[1] <= hi[1]);
        }
        prop_assert!(cat.iter().all(|a| a.amplitude > 0.0 && a.period > 0.0));
    }
}
