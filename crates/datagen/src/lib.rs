//! # pdc-datagen — reproducible synthetic datasets
//!
//! The paper's modules run on course-provided datasets we do not have: a
//! 90-dimensional feature-vector file (Module 2), uniform and exponential
//! scalar data (Module 3), an asteroid-like 2-d catalog with light-curve
//! amplitude and rotation period (Module 4), and a clusterable 2-d dataset
//! (Module 5). This crate generates statistically equivalent datasets from
//! explicit seeds, so every experiment in the reproduction is
//! deterministic.
//!
//! All generators take a `u64` seed and are pure functions of their
//! arguments.

#![warn(missing_docs)]

pub mod astro;
pub mod io;
pub mod points;
pub mod scalar;

pub use astro::{asteroid_catalog, random_range_queries, Asteroid};
pub use io::{dataset_from_csv, dataset_to_csv, read_dataset, write_dataset};
pub use points::{feature_vectors, gaussian_mixture, uniform_points, Dataset, LabeledDataset};
pub use scalar::{exponential_f64, uniform_f64, zipf_f64};
