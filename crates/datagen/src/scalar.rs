//! Scalar distributions for the distribution-sort module.
//!
//! Module 3's three activities hinge on the input distribution: uniform
//! data balances equal-width buckets; exponential data skews them badly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp};

/// `n` doubles uniformly distributed on `[lo, hi)`.
///
/// # Panics
/// Panics if `lo >= hi`.
pub fn uniform_f64(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    assert!(lo < hi, "uniform range must be non-empty: [{lo}, {hi})");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `n` doubles drawn from an exponential distribution with rate `lambda`
/// (mean `1/lambda`). Heavily skewed toward small values — the Module 3
/// load-imbalance workload.
///
/// # Panics
/// Panics if `lambda` is not strictly positive.
pub fn exponential_f64(n: usize, lambda: f64, seed: u64) -> Vec<f64> {
    assert!(lambda > 0.0, "exponential rate must be positive");
    let exp = Exp::new(lambda).expect("validated rate");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| exp.sample(&mut rng)).collect()
}

/// `n` draws from a Zipf-like distribution over ranks `1..=n_items`
/// (`P(k) ∝ k^-s`), returned as f64 ranks — the classic database skew
/// (top-k queries, hot keys).
///
/// # Panics
/// Panics if `n_items == 0` or `s < 0`.
pub fn zipf_f64(n: usize, n_items: usize, s: f64, seed: u64) -> Vec<f64> {
    assert!(n_items > 0, "need at least one item");
    assert!(s >= 0.0, "exponent must be non-negative");
    // Inverse-CDF sampling over the (small) discrete support.
    let weights: Vec<f64> = (1..=n_items).map(|k| (k as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(n_items);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            let k = cdf.partition_point(|&c| c < u);
            (k + 1).min(n_items) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_range_and_is_seeded() {
        let a = uniform_f64(1000, -2.0, 3.0, 42);
        assert_eq!(a.len(), 1000);
        assert!(a.iter().all(|&x| (-2.0..3.0).contains(&x)));
        assert_eq!(a, uniform_f64(1000, -2.0, 3.0, 42), "same seed, same data");
        assert_ne!(
            a,
            uniform_f64(1000, -2.0, 3.0, 43),
            "different seed differs"
        );
    }

    #[test]
    fn uniform_mean_is_near_center() {
        let a = uniform_f64(20_000, 0.0, 1.0, 7);
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive_and_skewed() {
        let a = exponential_f64(20_000, 2.0, 11);
        assert!(a.iter().all(|&x| x >= 0.0));
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} should approach 1/λ");
        // Far more mass below the mean than above: the skew that breaks
        // equal-width buckets.
        let below = a.iter().filter(|&&x| x < mean).count();
        assert!(below as f64 > 0.6 * a.len() as f64);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let a = zipf_f64(20_000, 100, 1.2, 3);
        assert!(a.iter().all(|&x| (1.0..=100.0).contains(&x)));
        let ones = a.iter().filter(|&&x| x == 1.0).count();
        let hundreds = a.iter().filter(|&&x| x == 100.0).count();
        assert!(
            ones > 20 * (hundreds + 1),
            "rank 1 dominates: {ones} vs {hundreds}"
        );
        assert_eq!(a, zipf_f64(20_000, 100, 1.2, 3), "seeded");
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniform_over_items() {
        let a = zipf_f64(50_000, 10, 0.0, 7);
        for k in 1..=10 {
            let c = a.iter().filter(|&&x| x == k as f64).count();
            assert!((c as f64 - 5000.0).abs() < 500.0, "item {k}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_rejects_empty_range() {
        let _ = uniform_f64(1, 1.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_bad_rate() {
        let _ = exponential_f64(1, 0.0, 0);
    }
}
