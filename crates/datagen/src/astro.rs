//! Asteroid-like 2-d catalog and range-query workloads (Module 4).
//!
//! The module's motivating example: *"Return all asteroids with a light
//! curve amplitude between 0.2–1.0 and a rotation period between 30–100
//! hours."* We synthesize a catalog with log-uniform amplitude and period
//! (matching the heavy-tailed distributions of real light-curve surveys)
//! plus a generator of random query rectangles with controllable extent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Asteroid {
    /// Light-curve amplitude, magnitudes (0.01 – 2.0, log-uniform).
    pub amplitude: f64,
    /// Rotation period, hours (0.5 – 1000, log-uniform).
    pub period: f64,
}

impl Asteroid {
    /// The (amplitude, period) pair as a 2-d point.
    pub fn as_point(&self) -> [f64; 2] {
        [self.amplitude, self.period]
    }
}

/// Amplitude domain of the synthetic catalog.
pub const AMPLITUDE_RANGE: (f64, f64) = (0.01, 2.0);
/// Period domain of the synthetic catalog, hours.
pub const PERIOD_RANGE: (f64, f64) = (0.5, 1000.0);

fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let (llo, lhi) = (lo.ln(), hi.ln());
    rng.gen_range(llo..lhi).exp()
}

/// Generate `n` synthetic asteroids.
pub fn asteroid_catalog(n: usize, seed: u64) -> Vec<Asteroid> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Asteroid {
            amplitude: log_uniform(&mut rng, AMPLITUDE_RANGE.0, AMPLITUDE_RANGE.1),
            period: log_uniform(&mut rng, PERIOD_RANGE.0, PERIOD_RANGE.1),
        })
        .collect()
}

/// Generate `n` random query rectangles `[(amin, pmin), (amax, pmax)]` whose
/// side lengths span `frac` of each (log) domain — larger `frac`, more
/// matches per query.
///
/// # Panics
/// Panics unless `0 < frac <= 1`.
pub fn random_range_queries(n: usize, frac: f64, seed: u64) -> Vec<([f64; 2], [f64; 2])> {
    assert!(
        frac > 0.0 && frac <= 1.0,
        "frac must be in (0, 1], got {frac}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let (alo, ahi) = AMPLITUDE_RANGE;
            let (plo, phi) = PERIOD_RANGE;
            // Pick a log-space window of width frac * domain.
            let aw = (ahi.ln() - alo.ln()) * frac;
            let pw = (phi.ln() - plo.ln()) * frac;
            let a0 = rng.gen_range(alo.ln()..(ahi.ln() - aw));
            let p0 = rng.gen_range(plo.ln()..(phi.ln() - pw));
            ([a0.exp(), p0.exp()], [(a0 + aw).exp(), (p0 + pw).exp()])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_stays_in_domain_and_is_seeded() {
        let c = asteroid_catalog(500, 4);
        assert_eq!(c.len(), 500);
        for a in &c {
            assert!((AMPLITUDE_RANGE.0..=AMPLITUDE_RANGE.1).contains(&a.amplitude));
            assert!((PERIOD_RANGE.0..=PERIOD_RANGE.1).contains(&a.period));
        }
        assert_eq!(c, asteroid_catalog(500, 4));
        assert_ne!(c, asteroid_catalog(500, 5));
    }

    #[test]
    fn log_uniform_fills_decades() {
        // Both the sub-hour and the >100h regime must be populated.
        let c = asteroid_catalog(5000, 8);
        assert!(c.iter().any(|a| a.period < 2.0));
        assert!(c.iter().any(|a| a.period > 100.0));
    }

    #[test]
    fn queries_are_well_formed_boxes() {
        for (lo, hi) in random_range_queries(200, 0.3, 17) {
            assert!(lo[0] < hi[0] && lo[1] < hi[1]);
            assert!(lo[0] >= AMPLITUDE_RANGE.0 * 0.999);
            assert!(hi[1] <= PERIOD_RANGE.1 * 1.001);
        }
    }

    #[test]
    fn query_extent_controls_selectivity() {
        let catalog = asteroid_catalog(2000, 1);
        let hits = |frac: f64| -> usize {
            random_range_queries(50, frac, 2)
                .iter()
                .map(|(lo, hi)| {
                    catalog
                        .iter()
                        .filter(|a| {
                            a.amplitude >= lo[0]
                                && a.amplitude <= hi[0]
                                && a.period >= lo[1]
                                && a.period <= hi[1]
                        })
                        .count()
                })
                .sum()
        };
        assert!(hits(0.5) > hits(0.1), "wider queries match more");
    }

    #[test]
    #[should_panic(expected = "frac")]
    fn zero_extent_queries_are_rejected() {
        let _ = random_range_queries(1, 0.0, 0);
    }
}
