//! Multi-dimensional point datasets (Modules 2 and 5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A dense, row-major collection of `dim`-dimensional points.
///
/// Stored flat for cache-friendly traversal; `point(i)` views row `i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Wrap a flat buffer. `data.len()` must be a multiple of `dim`.
    ///
    /// # Panics
    /// Panics on a ragged buffer or zero dimension.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "points need at least one dimension");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer of {} values is not a whole number of {dim}-d points",
            data.len()
        );
        Self { dim, data }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row view of point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat row-major buffer.
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over point rows.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Squared Euclidean distance between points `i` and `j`.
    pub fn dist2(&self, i: usize, j: usize) -> f64 {
        self.point(i)
            .iter()
            .zip(self.point(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Take a contiguous sub-range of points (used when distributing data
    /// across ranks).
    pub fn slice_points(&self, start: usize, count: usize) -> Dataset {
        let lo = start * self.dim;
        let hi = (start + count) * self.dim;
        Dataset::from_flat(self.dim, self.data[lo..hi].to_vec())
    }
}

/// A dataset with ground-truth cluster labels (for validating k-means).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledDataset {
    /// The points.
    pub points: Dataset,
    /// True generating component of each point.
    pub labels: Vec<usize>,
    /// Centers the components were drawn around.
    pub centers: Dataset,
}

/// `n` points uniform in the `dim`-dimensional cube `[lo, hi)^dim`.
pub fn uniform_points(n: usize, dim: usize, lo: f64, hi: f64, seed: u64) -> Dataset {
    assert!(lo < hi, "uniform range must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..n * dim).map(|_| rng.gen_range(lo..hi)).collect();
    Dataset::from_flat(dim, data)
}

/// The Module 2 stand-in dataset: `n` feature vectors of 90 dimensions,
/// values in `[0, 1)` — statistically equivalent to the course's 90-d file.
pub fn feature_vectors(n: usize, seed: u64) -> Dataset {
    uniform_points(n, 90, 0.0, 1.0, seed)
}

/// A Gaussian mixture: `k` centers uniform in `[0, extent)^dim`, `n` points
/// assigned round-robin to components and perturbed by `spread`-σ noise.
/// Ground truth labels/centers are returned for cluster validation.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn gaussian_mixture(
    n: usize,
    dim: usize,
    k: usize,
    extent: f64,
    spread: f64,
    seed: u64,
) -> LabeledDataset {
    assert!(k > 0 && k <= n, "need 1 <= k <= n, got k={k} n={n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<f64> = (0..k * dim).map(|_| rng.gen_range(0.0..extent)).collect();
    let noise = Normal::new(0.0, spread).expect("finite spread");
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        labels.push(c);
        for d in 0..dim {
            data.push(centers[c * dim + d] + noise.sample(&mut rng));
        }
    }
    LabeledDataset {
        points: Dataset::from_flat(dim, data),
        labels,
        centers: Dataset::from_flat(dim, centers),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_views_rows() {
        let d = Dataset::from_flat(3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(1), &[4.0, 5.0, 6.0]);
        assert_eq!(d.iter().count(), 2);
        assert!((d.dist2(0, 1) - 27.0).abs() < 1e-12);
    }

    #[test]
    fn slice_points_extracts_rows() {
        let d = uniform_points(10, 4, 0.0, 1.0, 3);
        let s = d.slice_points(2, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.point(0), d.point(2));
        assert_eq!(s.point(4), d.point(6));
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_flat_buffer_is_rejected() {
        let _ = Dataset::from_flat(3, vec![1.0; 7]);
    }

    #[test]
    fn feature_vectors_are_90d_and_seeded() {
        let d = feature_vectors(50, 9);
        assert_eq!(d.dim(), 90);
        assert_eq!(d.len(), 50);
        assert_eq!(d, feature_vectors(50, 9));
        assert!(d.flat().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn gaussian_mixture_clusters_around_centers() {
        let lm = gaussian_mixture(600, 2, 3, 100.0, 0.5, 21);
        assert_eq!(lm.points.len(), 600);
        assert_eq!(lm.centers.len(), 3);
        // Each point sits near its labelled center (within ~6 sigma).
        for (i, &label) in lm.labels.iter().enumerate() {
            let d2: f64 = lm
                .points
                .point(i)
                .iter()
                .zip(lm.centers.point(label))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(d2.sqrt() < 6.0 * 0.5 * 2.0, "point {i} strayed {d2}");
        }
    }

    #[test]
    fn gaussian_mixture_balances_components() {
        let lm = gaussian_mixture(100, 2, 4, 10.0, 0.1, 5);
        for c in 0..4 {
            assert_eq!(lm.labels.iter().filter(|&&l| l == c).count(), 25);
        }
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn mixture_rejects_zero_k() {
        let _ = gaussian_mixture(10, 2, 0, 1.0, 0.1, 0);
    }
}
