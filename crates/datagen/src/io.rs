//! Dataset file I/O: the course distributes its datasets as plain text
//! files on the cluster's shared filesystem; these helpers read and write
//! the same simple formats (CSV rows of `f64`) so generated datasets can be
//! saved, inspected, and reloaded byte-for-byte.

use crate::points::Dataset;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Serialize a dataset as CSV (one point per line, full `f64` precision).
pub fn dataset_to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    for point in data.iter() {
        let mut first = true;
        for v in point {
            if !first {
                out.push(',');
            }
            // RFC-compliant shortest roundtrip formatting of f64.
            write!(out, "{v:?}").expect("writing to a String cannot fail");
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parse a CSV string into a dataset. Every row must have the same number
/// of columns; blank lines and `#` comments are skipped.
pub fn dataset_from_csv(text: &str) -> io::Result<Dataset> {
    let mut values = Vec::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row: Vec<f64> = line
            .split(',')
            .map(|f| {
                f.trim().parse::<f64>().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {}: bad float {f:?}: {e}", lineno + 1),
                    )
                })
            })
            .collect::<io::Result<_>>()?;
        match dim {
            None => dim = Some(row.len()),
            Some(d) if d != row.len() => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {} columns, expected {d}", lineno + 1, row.len()),
                ));
            }
            _ => {}
        }
        values.extend(row);
    }
    let dim =
        dim.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "CSV contains no data rows"))?;
    Ok(Dataset::from_flat(dim, values))
}

/// Write a dataset to a CSV file.
pub fn write_dataset(path: impl AsRef<Path>, data: &Dataset) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(dataset_to_csv(data).as_bytes())?;
    w.flush()
}

/// Read a dataset from a CSV file.
pub fn read_dataset(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    let mut text = String::new();
    for line in io::BufReader::new(file).lines() {
        text.push_str(&line?);
        text.push('\n');
    }
    dataset_from_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::uniform_points;

    #[test]
    fn csv_roundtrips_exactly() {
        let d = uniform_points(50, 7, -3.0, 9.0, 17);
        let text = dataset_to_csv(&d);
        let back = dataset_from_csv(&text).expect("parses");
        assert_eq!(back, d, "full-precision roundtrip");
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let text = "# header\n1.0,2.0\n\n3.5,-4.25\n";
        let d = dataset_from_csv(text).expect("parses");
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(1), &[3.5, -4.25]);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let err = dataset_from_csv("1.0,2.0\n3.0\n").expect_err("ragged");
        assert!(err.to_string().contains("columns"));
    }

    #[test]
    fn bad_floats_are_reported_with_line_numbers() {
        let err = dataset_from_csv("1.0,2.0\n1.0,banana\n").expect_err("bad float");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(dataset_from_csv("# only comments\n").is_err());
    }

    #[test]
    fn file_roundtrip_works() {
        let d = uniform_points(20, 3, 0.0, 1.0, 5);
        let dir = std::env::temp_dir().join("pdc_datagen_io_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("points.csv");
        write_dataset(&path, &d).expect("writes");
        let back = read_dataset(&path).expect("reads");
        assert_eq!(back, d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn special_values_roundtrip() {
        let d = Dataset::from_flat(2, vec![f64::MAX, f64::MIN_POSITIVE, -0.0, 1e-300]);
        let back = dataset_from_csv(&dataset_to_csv(&d)).expect("parses");
        assert_eq!(back, d);
    }
}
