//! Tour of the future-work extensions the paper sketches in §V: the
//! latency-hiding stencil (Module 6), the top-k query module (Module 7),
//! and sub-communicators for team-based decomposition.
//!
//! ```text
//! cargo run --release --example extensions_tour
//! ```

use pdc_suite::modules::module6::{run_stencil, HaloVariant};
use pdc_suite::modules::module7::{run_top_k, TopKStrategy};
use pdc_suite::modules::stencil2d::{run_stencil_2d, sequential_stencil_2d};
use pdc_suite::mpi::{Op, World};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Module 6: overlap communication with computation.
    println!("== module 6: latency hiding ==");
    let blocking = run_stencil(40_000, 8, 50, HaloVariant::BlockingFirst, 2)?;
    let overlapped = run_stencil(40_000, 8, 50, HaloVariant::Overlapped, 2)?;
    println!(
        "1-d diffusion, 320k cells, 8 ranks on 2 nodes, 50 iterations:\n\
         halos first, then compute : {:.6} s\n\
         compute interior, overlap : {:.6} s   ({:.1}% faster)\n\
         checksums agree to {:.1e}",
        blocking.sim_time,
        overlapped.sim_time,
        100.0 * (1.0 - overlapped.sim_time / blocking.sim_time),
        (blocking.checksum - overlapped.checksum).abs(),
    );

    // Module 6, part 2: the same physics in 2-d over a Cartesian rank grid.
    let rep = run_stencil_2d(96, 96, 8, 40)?;
    let reference: f64 = sequential_stencil_2d(96, 96, 40).iter().sum();
    println!(
        "\n2-d stencil, 96x96 cells on a {}x{} rank grid: checksum matches\n\
         the sequential reference to {:.1e} after 40 iterations ({:.6} s)",
        rep.rank_grid.0,
        rep.rank_grid.1,
        (rep.checksum - reference).abs(),
        rep.sim_time
    );

    // Module 7: three top-k strategies, one answer.
    println!("\n== module 7: distributed top-k ==");
    for strategy in [
        TopKStrategy::GatherAll,
        TopKStrategy::LocalPrune,
        TopKStrategy::TreeMerge,
    ] {
        let rep = run_top_k(100_000, 8, 10, strategy, 7)?;
        println!(
            "{:>10?}: total bytes {:>9}, root received {:>8}, top score {:.3}",
            strategy, rep.comm_bytes, rep.root_recv_bytes, rep.top[0]
        );
    }

    // Sub-communicators: per-team reductions after an MPI_Comm_split.
    println!("\n== sub-communicators ==");
    let out = World::run_simple(8, |comm| {
        let team = (comm.rank() / 4) as u32;
        let mut sc = comm.split(team, comm.rank() as i64)?;
        let team_total = comm.sub_allreduce(&mut sc, &[comm.rank() as u64], Op::Sum)?;
        let world_total = comm.allreduce(&[comm.rank() as u64], Op::Sum)?;
        Ok((team, team_total[0], world_total[0]))
    })?;
    for (rank, (team, team_total, world_total)) in out.values.iter().enumerate() {
        if rank % 4 == 0 {
            println!("team {team}: team allreduce {team_total}, world allreduce {world_total}");
        }
    }
    Ok(())
}
