//! Quickstart: a five-minute tour of the runtime and the modules.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pdc_suite::datagen::gaussian_mixture;
use pdc_suite::modules::module5::{run_kmeans, CommOption};
use pdc_suite::mpi::{Op, World, ANY_SOURCE, ANY_TAG};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Hello, distributed world: four ranks greet rank 0.
    let out = World::run_simple(4, |comm| {
        if comm.rank() == 0 {
            let mut greetings = Vec::new();
            for _ in 1..comm.size() {
                let (msg, status) = comm.recv::<u8>(ANY_SOURCE, ANY_TAG)?;
                greetings.push((status.source, String::from_utf8_lossy(&msg).into_owned()));
            }
            greetings.sort();
            Ok(greetings)
        } else {
            let msg = format!("hi from rank {}", comm.rank());
            comm.send(msg.as_bytes(), 0, 0)?;
            Ok(Vec::new())
        }
    })?;
    println!("-- point-to-point --");
    for (src, msg) in &out.values[0] {
        println!("rank 0 heard rank {src}: {msg}");
    }

    // 2. Collectives: a global sum every rank agrees on.
    let out = World::run_simple(8, |comm| {
        let contribution = [(comm.rank() + 1) as u64];
        Ok(comm.allreduce(&contribution, Op::Sum)?[0])
    })?;
    println!("\n-- collectives --");
    println!("allreduce(1..=8) on every rank: {:?}", out.values[0]);
    println!(
        "simulated time {:.2} us, {} messages moved",
        out.sim_time * 1e6,
        out.total_stats().msgs_sent
    );

    // 3. A real module: distributed k-means over three blobs.
    let blobs = gaussian_mixture(3_000, 2, 3, 100.0, 1.0, 42);
    let report = run_kmeans(&blobs.points, 3, 8, CommOption::WeightedMeans, 1, 1e-9)?;
    println!("\n-- module 5: k-means --");
    println!(
        "{} points, k=3, 8 ranks: converged in {} iterations, inertia {:.1}",
        report.n, report.iterations, report.inertia
    );
    for (i, c) in report.centroids.chunks_exact(2).enumerate() {
        println!("centroid {i}: ({:8.3}, {:8.3})", c[0], c[1]);
    }
    println!(
        "time split: {:.0}% compute / {:.0}% communication (simulated)",
        100.0 * report.compute_time / (report.compute_time + report.comm_time),
        100.0 * report.comm_time / (report.compute_time + report.comm_time),
    );
    Ok(())
}
