//! Course tooling demo: auto-grade "submissions" for Modules 2–5 with the
//! rubric checker, including a deliberately broken submission so the
//! failure path is visible.
//!
//! ```text
//! cargo run --release --example autograder
//! ```

use pdc_suite::datagen::{
    asteroid_catalog, gaussian_mixture, random_range_queries, uniform_points,
};
use pdc_suite::modules::module2::{distance_rows, run_distance_matrix, Access};
use pdc_suite::modules::module3::{run_distribution_sort, BucketStrategy, InputDist};
use pdc_suite::modules::module4::{run_range_queries, Engine};
use pdc_suite::modules::module5::{run_kmeans, sequential_kmeans, CommOption};
use pdc_suite::pedagogy::{grade_module2, grade_module3, grade_module4, grade_module5};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Module 2: a correct submission.
    let pts = uniform_points(128, 90, 0.0, 1.0, 3);
    let expected: f64 = distance_rows(&pts, 0, 128, Access::RowWise).iter().sum();
    let row = run_distance_matrix(&pts, 4, Access::RowWise, 1)?;
    let tiled = run_distance_matrix(&pts, 4, Access::Tiled { tile: 256 }, 1)?;
    print!("{}", grade_module2(&row, &tiled, expected).render());

    // Module 3: a correct submission.
    let uni = run_distribution_sort(5_000, 8, InputDist::Uniform, BucketStrategy::EqualWidth, 3)?;
    let exp = run_distribution_sort(
        5_000,
        8,
        InputDist::Exponential,
        BucketStrategy::EqualWidth,
        3,
    )?;
    let hist = run_distribution_sort(
        5_000,
        8,
        InputDist::Exponential,
        BucketStrategy::Histogram { bins: 512 },
        3,
    )?;
    print!("\n{}", grade_module3(&uni, &exp, &hist).render());

    // Module 3 again: a student who skipped the exponential activity and
    // handed in the uniform run three times.
    print!(
        "\n{}(a submission that never demonstrated the load imbalance)\n",
        grade_module3(&uni, &uni, &uni).render()
    );

    // Module 4.
    let cat = asteroid_catalog(50_000, 7);
    let qs = random_range_queries(200, 0.05, 8);
    let b1 = run_range_queries(&cat, &qs, 1, Engine::BruteForce, 1)?;
    let bp = run_range_queries(&cat, &qs, 16, Engine::BruteForce, 1)?;
    let r1 = run_range_queries(&cat, &qs, 1, Engine::RTree, 1)?;
    let rp = run_range_queries(&cat, &qs, 16, Engine::RTree, 1)?;
    print!("\n{}", grade_module4(&b1, &bp, &r1, &rp).render());

    // Module 5.
    let blobs = gaussian_mixture(1_000, 2, 4, 100.0, 1.0, 5).points;
    let (centroids, _, _) = sequential_kmeans(&blobs, 4, 1e-9);
    let reference: f64 = (0..blobs.len())
        .map(|i| {
            let p = blobs.point(i);
            centroids
                .chunks_exact(2)
                .map(|c| (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2))
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    let wm = run_kmeans(&blobs, 4, 8, CommOption::WeightedMeans, 1, 1e-9)?;
    let ea = run_kmeans(&blobs, 4, 8, CommOption::ExplicitAssignment, 1, 1e-9)?;
    print!("\n{}", grade_module5(&wm, &ea, reference).render());
    Ok(())
}
