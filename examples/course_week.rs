//! A student's first week on the (simulated) cluster: write a job script,
//! watch the queue under FIFO vs backfill, run the warm-up exercises, and
//! check the cache counters of a first kernel — the ancillary modules end
//! to end.
//!
//! ```text
//! cargo run --release --example course_week
//! ```

use pdc_suite::cluster::slurm::Policy;
use pdc_suite::modules::ancillary::{slurm_intro, warmups};
use pdc_suite::modules::module2::{trace_distance_kernel, Access};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Day 1: the batch scheduler.
    println!("== day 1: SLURM ==");
    let walk = slurm_intro(Policy::EasyBackfill);
    println!("your first job script:\n{}", walk.scripts[0]);
    println!("the queue under EASY backfill:");
    for job in &walk.schedule {
        println!(
            "  {:<16} start {:>6.0}s  end {:>6.0}s  nodes {:?}  ({:?})",
            job.script.name, job.start_time, job.end_time, job.nodes, job.outcome
        );
    }
    let fifo = slurm_intro(Policy::Fifo);
    println!(
        "mean queue wait: backfill {:.0}s vs FIFO {:.0}s\n",
        walk.mean_wait, fifo.mean_wait
    );

    // Day 2: warm-up exercises.
    println!("== day 2: MPI warm-ups ==");
    for line in warmups::hello_world(4)? {
        println!("  {line}");
    }
    println!(
        "  token-ring sum of ranks 0..6 = {}",
        warmups::token_ring_sum(6)?
    );
    let data: Vec<f64> = (0..640).map(|i| i as f64).collect();
    println!(
        "  distributed mean of 0..640 = {}",
        warmups::distributed_mean(&data, 8)?
    );
    println!(
        "  pi by reduce = {:.10}",
        warmups::pi_estimate(1_000_000, 8)?
    );

    // Day 3: first look at the memory hierarchy.
    println!("\n== day 3: why does my kernel crawl? ==");
    let row = trace_distance_kernel(200, 90, Access::RowWise);
    let tiled = trace_distance_kernel(200, 90, Access::Tiled { tile: 32 });
    println!(
        "  row-wise distance kernel: L1 miss rate {:.2}%, {} DRAM lines",
        row.l1_miss_rate * 100.0,
        row.dram_lines
    );
    println!(
        "  tiled (32-point tiles):   L1 miss rate {:.2}%, {} DRAM lines",
        tiled.l1_miss_rate * 100.0,
        tiled.dram_lines
    );
    println!("  (the cache simulator plays the role of `perf stat`)");
    Ok(())
}
