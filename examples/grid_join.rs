//! The Module 8 capstone: a distributed similarity self-join, uniform vs
//! clustered data — correctness, pruning power, and the load-balance
//! surprise hash partitioning hides.
//!
//! ```text
//! cargo run --release --example grid_join
//! ```

use pdc_suite::cluster::metrics::imbalance_factor;
use pdc_suite::datagen::{gaussian_mixture, uniform_points};
use pdc_suite::modules::module8::{run_self_join, sequential_self_join, JoinMethod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eps = 1.5;
    let ranks = 8;

    for (label, pts) in [
        ("uniform", uniform_points(20_000, 2, 0.0, 100.0, 42)),
        (
            "clustered",
            gaussian_mixture(20_000, 2, 4, 100.0, 2.0, 42).points,
        ),
    ] {
        println!("== {label} data: 20k points, eps = {eps} ==");
        let reference = sequential_self_join(&pts, eps);
        let bf = run_self_join(&pts, eps, ranks, JoinMethod::BruteForce)?;
        let grid = run_self_join(&pts, eps, ranks, JoinMethod::Grid)?;
        assert_eq!(bf.pairs, reference);
        assert_eq!(grid.pairs, reference);
        println!(
            "  pairs within eps : {} (all three methods agree)",
            reference
        );
        println!(
            "  candidates tested: brute {} vs grid {}  ({:.0}x pruned)",
            bf.candidates,
            grid.candidates,
            bf.candidates as f64 / grid.candidates as f64
        );
        println!(
            "  simulated time   : brute {:.5}s vs grid {:.5}s",
            bf.sim_time, grid.sim_time
        );
        let loads: Vec<f64> = grid
            .rank_candidates
            .iter()
            .map(|&c| c as f64 + 1.0)
            .collect();
        println!(
            "  grid load balance: per-rank candidates {:?}\n                     imbalance {:.2}x\n",
            grid.rank_candidates,
            imbalance_factor(&loads)
        );
    }
    println!(
        "lesson: the grid join wins everywhere, but hash partitioning balances\n\
         *cells*, not *work* — clustered data piles candidate pairs onto the\n\
         ranks owning the dense cells, re-opening Module 3's load-balance story."
    );
    Ok(())
}
