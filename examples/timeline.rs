//! Execution timelines: see the shape of a parallel program.
//!
//! Three canonical shapes, rendered as per-rank Gantt strips over
//! simulated time — the way a timeline viewer (Jumpshot/Vampir) would
//! show them on the cluster.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use pdc_suite::mpi::trace::summarize;
use pdc_suite::mpi::{render_timeline, Op, World, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Shape 1: alternating compute/communication phases (k-means style).
    // Two nodes and an 8 MiB reduction make the communication phase wide
    // enough to see next to the 10 ms compute phase.
    let out = World::run(WorldConfig::new(4).on_nodes(2).with_tracing(), |comm| {
        let big = vec![0.0f64; 1 << 20];
        for _ in 0..6 {
            comm.charge_flops(1.6e8); // 10 ms of local work
            let _ = comm.allreduce(&big, Op::Sum)?;
        }
        Ok(())
    })?;
    println!("alternating phases (compute, then a collective, six rounds):");
    print!("{}", render_timeline(&out.traces, 72, None));

    // Shape 2: a straggler starves its partners.
    let out = World::run(WorldConfig::new(4).with_tracing(), |comm| {
        let work = if comm.rank() == 2 { 48.0e9 } else { 16.0e9 };
        comm.charge_flops(work); // rank 2 takes 3x longer
        comm.barrier()?;
        comm.charge_flops(8.0e9);
        Ok(())
    })?;
    println!("\na straggler (rank 2) holds the barrier:");
    print!("{}", render_timeline(&out.traces, 72, None));
    for (rank, t) in out.traces.iter().enumerate() {
        let s = summarize(t);
        println!(
            "  rank {rank}: compute {:.2}s, waiting {:.2}s",
            s.compute,
            s.send + s.recv
        );
    }

    // Shape 3: a root serializing a linear broadcast.
    let out = World::run(WorldConfig::new(6).with_tracing(), |comm| {
        if comm.rank() == 0 {
            let payload = vec![0u8; 32 << 20];
            for dst in 1..comm.size() {
                comm.send(&payload, dst, 0)?;
            }
        } else {
            let _ = comm.recv::<u8>(0, 0)?;
        }
        comm.charge_flops(1.6e8); // 10 ms of post-broadcast work
        Ok(())
    })?;
    println!("\na linear broadcast: the root's injection gap serializes everyone:");
    print!("{}", render_timeline(&out.traces, 72, None));
    Ok(())
}
