//! Dynamic load balancing with a master–worker task farm — the classic
//! remedy for the data-dependent imbalance Module 3 exposes, built from
//! `ANY_SOURCE` receives and `MPI_Iprobe`.
//!
//! A bag of tasks with wildly skewed costs is distributed two ways:
//!
//! * **static**: task `i` goes to rank `i % workers` up front;
//! * **dynamic**: rank 0 hands out one task at a time as workers finish.
//!
//! With skewed costs the static schedule is hostage to the unlucky worker;
//! the farm self-balances.
//!
//! ```text
//! cargo run --release --example task_farm
//! ```

use pdc_suite::mpi::{Comm, Result, World, ANY_SOURCE};

const TASKS: usize = 64;
const REQUEST_TAG: u32 = 1;
const WORK_TAG: u32 = 2;
const STOP: u64 = u64::MAX;

/// Simulated cost of task `i`, seconds of compute — a heavy tail whose
/// placement is uncorrelated with the task index (so a static round-robin
/// deal concentrates several long tasks on unlucky workers).
fn task_cost(i: usize) -> f64 {
    let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 56;
    if h.is_multiple_of(5) {
        0.020
    } else {
        0.001
    }
}

fn run_task(comm: &mut Comm, i: usize) {
    // 16 GFLOP/s core: cost seconds => cost * 16e9 flops.
    comm.charge_flops(task_cost(i) * 16.0e9);
    // Pace wall-clock progress to simulated progress (10x fast-forward).
    // The simulated clock is exact for fixed communication structures, but
    // a master serving ANY_SOURCE requests processes them in *real* arrival
    // order; pacing keeps that order consistent with simulated time so the
    // farm's timing is faithful. See the `pdc-mpi` crate docs.
    std::thread::sleep(std::time::Duration::from_secs_f64(task_cost(i) / 10.0));
}

fn static_schedule(comm: &mut Comm) -> Result<usize> {
    let mut done = 0;
    let workers = comm.size() - 1;
    if comm.rank() > 0 {
        let me = comm.rank() - 1;
        for i in (0..TASKS).filter(|i| i % workers == me) {
            run_task(comm, i);
            done += 1;
        }
    }
    // Everyone reports in so the makespan covers all work.
    let total = comm.reduce(&[done as u64], pdc_suite::mpi::Op::Sum, 0)?;
    if let Some(t) = total {
        assert_eq!(t[0] as usize, TASKS);
    }
    Ok(done)
}

fn dynamic_farm(comm: &mut Comm) -> Result<usize> {
    if comm.rank() == 0 {
        // Master: hand out the next task to whoever asks.
        let mut next = 0usize;
        let mut active = comm.size() - 1;
        while active > 0 {
            let (_, st) = comm.recv::<u8>(ANY_SOURCE, REQUEST_TAG)?;
            if next < TASKS {
                comm.send(&[next as u64], st.source, WORK_TAG)?;
                next += 1;
            } else {
                comm.send(&[STOP], st.source, WORK_TAG)?;
                active -= 1;
            }
        }
        Ok(0)
    } else {
        let mut done = 0;
        loop {
            comm.send(&[0u8], 0, REQUEST_TAG)?;
            let (task, _) = comm.recv::<u64>(0, WORK_TAG)?;
            if task[0] == STOP {
                break;
            }
            run_task(comm, task[0] as usize);
            done += 1;
        }
        Ok(done)
    }
}

fn main() -> Result<()> {
    let p = 9; // 1 master + 8 workers
    println!("{TASKS} tasks, heavy-tailed costs, 8 workers\n");

    let st = World::run_simple(p, static_schedule)?;
    println!(
        "static round-robin : {:.4} s simulated, per-worker tasks {:?}",
        st.sim_time,
        &st.values[1..]
    );

    let dy = World::run_simple(p, dynamic_farm)?;
    println!(
        "dynamic task farm  : {:.4} s simulated, per-worker tasks {:?}",
        dy.sim_time,
        &dy.values[1..]
    );
    println!(
        "\nspeedup from dynamic scheduling: {:.2}x — the farm keeps every worker\n\
         busy while the static schedule waits on whoever drew the long tasks.",
        st.sim_time / dy.sim_time
    );
    Ok(())
}
