//! The lint clinic: the same defects, caught twice. `pdc-lint` reads
//! the *source* of a rank program and flags protocol bugs without ever
//! running it; `pdc-check` then executes the equivalent program and
//! confirms the diagnosis dynamically. Together they mirror the
//! MUST/ISP workflow: static screening first, dynamic verification
//! second.
//!
//! ```text
//! cargo run --release --example lint_clinic
//! ```

use pdc_suite::check::check_world;
use pdc_suite::lint::Linter;
use pdc_suite::mpi::{Comm, Result, WorldConfig};
use std::time::Duration;

/// The corpus sources are compiled *into this example as text* — they
/// are lint fodder, never built as Rust.
const SSEND_RING_SRC: &str = include_str!("../crates/lint/tests/corpus/ssend_ring.rs");
const MISALIGNED_BCAST_SRC: &str = include_str!("../crates/lint/tests/corpus/misaligned_bcast.rs");

fn cfg(size: usize) -> WorldConfig {
    WorldConfig::new(size).with_watchdog(Some(Duration::from_millis(50)))
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn lint_source(label: &str, src: &str) {
    let mut linter = Linter::new();
    linter.add_source(label, src);
    for report in linter.analyze_all() {
        print!("{}", report.render());
    }
}

/// Dynamic twin of `corpus/ssend_ring.rs`: every rank synchronous-sends
/// right before receiving from the left.
fn ssend_ring(comm: &mut Comm) -> Result<u64> {
    let rank = comm.rank();
    let size = comm.size();
    let right = (rank + 1) % size;
    let left = (rank + size - 1) % size;
    comm.ssend(&[rank as u64], right, 0)?;
    let (got, _status) = comm.recv::<u64>(left, 0)?;
    Ok(got[0])
}

/// Dynamic twin of `corpus/misaligned_bcast.rs`: rank 0 broadcasts from
/// root 0 while everyone else waits on root 1.
fn misaligned_bcast(comm: &mut Comm) -> Result<u64> {
    let seed = [7u64; 4];
    let got = if comm.rank() == 0 {
        comm.bcast(Some(&seed), 0)?
    } else {
        comm.bcast(None, 1)?
    };
    Ok(got.first().copied().unwrap_or(0))
}

fn main() {
    banner("1a. ssend ring — static lint (no execution)");
    lint_source("corpus/ssend_ring.rs", SSEND_RING_SRC);

    banner("1b. ssend ring — dynamic check (pdc-check)");
    let checked = check_world(cfg(3), ssend_ring);
    print!("{}", checked.report.render());

    banner("2a. misaligned bcast root — static lint (no execution)");
    lint_source("corpus/misaligned_bcast.rs", MISALIGNED_BCAST_SRC);

    banner("2b. misaligned bcast root — dynamic check (pdc-check)");
    let checked = check_world(cfg(3), misaligned_bcast);
    print!("{}", checked.report.render());

    println!(
        "\nlesson: the lint found both protocol bugs from the source alone —\n\
         before any rank ever ran — and the dynamic checker confirmed them\n\
         on a live schedule. Static analysis screens every path cheaply but\n\
         must approximate data-dependent behaviour; the checker is exact on\n\
         the schedules it sees. Use both (see docs/linting.md)."
    );
}
