//! The failure clinic: deterministic fault injection against the runtime's
//! fault-tolerance machinery, end to end.
//!
//! Four stations:
//!
//! 1. a scheduled rank crash surfaces as a typed `RankFailed` error on
//!    every affected rank — ULFM semantics, not a watchdog timeout;
//! 2. survivors acknowledge the failure (`agree`), `shrink` to a
//!    communicator of the living, and finish the job without the casualty;
//! 3. a lossy network (dropped messages) is fully repaired by the
//!    ack/timeout/retry policy — results match a fault-free run exactly;
//! 4. k-means survives a mid-run crash by restarting from its last
//!    allreduce-boundary checkpoint, reproducing the fault-free centroids.
//!
//! ```text
//! cargo run --release --example failure_clinic
//! ```

use pdc_suite::check::check_world;
use pdc_suite::datagen::gaussian_mixture;
use pdc_suite::modules::module5::{run_kmeans, run_kmeans_ft, CommOption};
use pdc_suite::mpi::{Error, FaultPlan, Op, RetryPolicy, World, WorldConfig};

fn main() {
    println!("== station 1: a crash is a typed error, not a hang ==");
    let plan = FaultPlan::seeded(1).crash_rank(2, 0.0);
    let err = World::run(WorldConfig::new(4).with_faults(plan), |comm| {
        comm.allreduce(&[comm.rank() as u64], Op::Sum)
    })
    .expect_err("a rank died");
    println!("  world error: {err}\n");

    println!("== station 2: survivors agree, shrink, and continue ==");
    let plan = FaultPlan::seeded(2).crash_rank(2, 0.0);
    let out = World::run(WorldConfig::new(4).with_faults(plan), |comm| {
        let mine = [comm.rank() as u64];
        match comm.allreduce(&mine, Op::Sum) {
            Ok(v) => Ok(v[0]),
            Err(Error::RankFailed { rank, .. }) if rank == comm.rank() => Ok(u64::MAX),
            Err(Error::RankFailed { rank, at }) => {
                if comm.rank() == 0 {
                    println!("  rank 0 learned: rank {rank} failed at t={at:.6}s");
                }
                comm.agree()?;
                let mut sc = comm.shrink()?;
                Ok(comm.sub_allreduce(&mut sc, &mine, Op::Sum)?[0])
            }
            Err(e) => Err(e),
        }
    })
    .expect("survivors recover");
    println!(
        "  survivor sum over ranks 0,1,3: {} (casualty returned {:#x})\n",
        out.values[0], out.values[2]
    );

    println!("== station 3: drops + retry are invisible ==");
    let program = |comm: &mut pdc_suite::mpi::Comm| {
        let peer = comm.size() - 1 - comm.rank();
        let req = comm.isend(&[comm.rank() as u64 + 100], peer, 9)?;
        let (v, _) = comm.recv::<u64>(peer, 9)?;
        comm.wait_all_sends(vec![req])?;
        comm.allreduce(&v, Op::Sum)
    };
    let clean = World::run(WorldConfig::new(4), program).expect("fault-free");
    let lossy_plan = FaultPlan::seeded(3)
        .with_drop_rate(0.4)
        .with_retry(RetryPolicy::default());
    let checked = check_world(WorldConfig::new(4).with_faults(lossy_plan), program);
    let lossy = checked.result.expect("retry repairs the losses");
    println!(
        "  results identical: {}; simulated time {:.6}s clean vs {:.6}s lossy",
        clean.values == lossy.values,
        clean.sim_time,
        lossy.sim_time
    );
    println!("  what the checker saw:");
    for line in checked.report.render().lines() {
        println!("    {line}");
    }
    println!();

    println!("== station 4: k-means checkpoint/restart ==");
    let pts = gaussian_mixture(600, 2, 4, 100.0, 1.0, 11).points;
    let baseline = run_kmeans(&pts, 4, 4, CommOption::WeightedMeans, 1, 1e-9).expect("baseline");
    let crash = FaultPlan::seeded(4).crash_rank(1, baseline.sim_time * 0.5);
    let (ft, restarts) = run_kmeans_ft(&pts, 4, 4, 1e-9, crash, 3).expect("ft run");
    println!(
        "  baseline: {} iterations, inertia {:.3}",
        baseline.iterations, baseline.inertia
    );
    println!(
        "  with mid-run crash: {} restart(s), centroids identical: {}, inertia {:.3}",
        restarts,
        ft.centroids == baseline.centroids,
        ft.inertia
    );
    println!(
        "\nlesson: fault tolerance is a *protocol* — typed failure reporting,\n\
         acknowledged agreement, and checkpoints at collective boundaries —\n\
         not a property the runtime can bolt on for free."
    );
}
