//! The profiling clinic: diagnose a load imbalance the way a Scalasca
//! user would, on the deliberately lopsided stencil from
//! `pdc_prof::clinic`.
//!
//! One rank does 3× the work per sweep. Its halo messages leave late, so
//! both neighbours block in `recv` — and the blame propagates outward one
//! hop per iteration. The profiler turns that story into numbers: a flat
//! profile (where did the time go?), wait states (who was waiting for
//! whom?), and the critical path (what actually bounded the makespan?).
//!
//! ```text
//! cargo run --release --example profiling_clinic
//! ```

use pdc_suite::prof::clinic::{imbalanced_stencil, ClinicConfig};
use pdc_suite::prof::{enriched_chrome_json, render, WaitKind};

fn main() {
    let cfg = ClinicConfig::default();
    println!(
        "imbalanced 1-D stencil: {} ranks x {} sweeps, rank {} is {}x slower\n",
        cfg.ranks, cfg.iters, cfg.slow_rank, cfg.slow_factor
    );

    let profiled = imbalanced_stencil(&cfg).expect("the clinic run succeeds");
    let profile = &profiled.profile;

    // Step 1: the full report, as `mpi_prof` would print it.
    println!("{}", render(profile));

    // Step 2: read the diagnosis off the top wait-state.
    let top = profile.top_wait_state().expect("waits exist");
    println!("--- diagnosis ---");
    match top.kind {
        WaitKind::LateSender => {
            println!(
                "top wait-state is a LATE SENDER: rank {} starts its halo sends \
                 late, and its neighbours lose {:.1} µs blocked in recv \
                 (worst hit: rank {}).",
                top.culprit,
                top.total_wait * 1e6,
                top.worst_waiter,
            );
            println!(
                "that is the slow rank we planted ({}): the fix is load balance, \
                 not faster networking.",
                cfg.slow_rank
            );
        }
        other => println!("unexpected top wait-state {other:?} — inspect the profile"),
    }

    // Step 3: confirm with the critical path — the makespan is explained
    // almost entirely by the slow rank's sweep.
    println!(
        "\ncritical path ({:.3} ms):",
        profile.critical_path.length * 1e3
    );
    for b in &profile.critical_path.blame {
        println!("  {:<12} {:>5.1}%", b.phase, b.percent);
    }

    // Step 4: leave an enriched Chrome trace for chrome://tracing.
    let trace = enriched_chrome_json(&profiled.output.traces, &profiled.output.phases);
    let path = std::env::temp_dir().join("profiling_clinic_trace.json");
    std::fs::write(&path, trace).expect("trace written");
    println!("\nenriched Chrome trace written to {}", path.display());
}
