//! The Module 3 story in one run: a distributed bucket sort that is
//! balanced on uniform data, falls over on exponential data, and is
//! rescued by histogram-based splitters.
//!
//! ```text
//! cargo run --release --example skewed_sort
//! ```

use pdc_suite::modules::module3::{run_distribution_sort, BucketStrategy, InputDist};

fn bar(len: usize, scale: usize) -> String {
    "#".repeat((len / scale).max(1))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_per_rank = 100_000;
    let ranks = 8;
    println!("distributed bucket sort: {n_per_rank} elements/rank on {ranks} ranks\n");

    for (title, dist, strategy) in [
        (
            "activity 1: uniform data, equal-width buckets",
            InputDist::Uniform,
            BucketStrategy::EqualWidth,
        ),
        (
            "activity 2: exponential data, equal-width buckets",
            InputDist::Exponential,
            BucketStrategy::EqualWidth,
        ),
        (
            "activity 3: exponential data, histogram splitters",
            InputDist::Exponential,
            BucketStrategy::Histogram { bins: 1024 },
        ),
    ] {
        let rep = run_distribution_sort(n_per_rank, ranks, dist, strategy, 7)?;
        println!("{title}");
        for (rank, &size) in rep.bucket_sizes.iter().enumerate() {
            println!("  rank {rank}: {:>7} {}", size, bar(size, 12_000));
        }
        println!(
            "  imbalance {:.2}x, simulated time {:.4}s, sorted: {}\n",
            rep.imbalance, rep.sim_time, rep.sorted_ok
        );
    }
    println!(
        "lesson: the workload is data-dependent — equal-width buckets shift the\n\
         skew of the input straight onto the ranks; equal-frequency splitters\n\
         (from a cheap histogram) restore balance without global sorting."
    );
    Ok(())
}
