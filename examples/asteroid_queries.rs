//! The Module 4 motivating scenario: *"Return all asteroids with a light
//! curve amplitude between 0.2–1.0 and a rotation period between 30–100
//! hours"* — answered by brute force and by the R-tree, on one node and on
//! two, with the trade-offs printed.
//!
//! ```text
//! cargo run --release --example asteroid_queries
//! ```

use pdc_suite::datagen::{asteroid_catalog, random_range_queries};
use pdc_suite::modules::module4::{brute_force_query, run_range_queries, Engine};
use pdc_suite::spatial::{RTree, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = asteroid_catalog(200_000, 2026);
    println!("catalog: {} synthetic asteroids", catalog.len());

    // The paper's example query, answered directly.
    let matches = brute_force_query(&catalog, &[0.2, 30.0], &[1.0, 100.0]);
    println!("asteroids with amplitude 0.2-1.0 mag and period 30-100 h: {matches}");

    // The same query through the R-tree, with pruning statistics.
    let tree = RTree::bulk_load(
        catalog
            .iter()
            .enumerate()
            .map(|(i, a)| (a.as_point(), i as u32))
            .collect(),
    );
    let (hits, stats) = tree.range_query(&Rect::new([0.2, 30.0], [1.0, 100.0]));
    println!(
        "R-tree agrees: {} matches after testing only {} of {} points ({} nodes visited)",
        hits.len(),
        stats.points_tested,
        catalog.len(),
        stats.nodes_visited
    );
    assert_eq!(hits.len() as u64, matches);

    // A distributed query workload: the efficiency-vs-scalability lesson.
    let queries = random_range_queries(400, 0.05, 7);
    println!(
        "\ndistributed workload: {} queries over {} ranks",
        queries.len(),
        16
    );
    for engine in [Engine::BruteForce, Engine::RTree] {
        let r1 = run_range_queries(&catalog, &queries, 1, engine, 1)?;
        let r16 = run_range_queries(&catalog, &queries, 16, engine, 1)?;
        println!(
            "{:>11?}: t1={:.4}s t16={:.4}s speedup {:>5.1}x  ({} matches)",
            engine,
            r1.sim_time,
            r16.sim_time,
            r1.sim_time / r16.sim_time,
            r16.total_matches
        );
    }

    // Resource allocation: same 16 ranks, one node vs two.
    let one = run_range_queries(&catalog, &queries, 16, Engine::RTree, 1)?;
    let two = run_range_queries(&catalog, &queries, 16, Engine::RTree, 2)?;
    println!(
        "\nR-tree on 16 ranks: 1 node {:.4}s vs 2 nodes {:.4}s — more aggregate \
         memory bandwidth wins",
        one.sim_time, two.sim_time
    );
    Ok(())
}
