//! The correctness clinic: four deliberately buggy MPI programs run under
//! the `pdc-check` checker, which explains each defect the way MUST or
//! ISP would — mismatched collectives as a per-rank diff, a deadlock as a
//! wait-for cycle, a message race confirmed by perturbed re-execution,
//! and finalize-time leaks with the call sites that produced them.
//!
//! ```text
//! cargo run --release --example correctness_clinic
//! ```

use pdc_suite::check::{check_world, check_world_confirm};
use pdc_suite::mpi::{Comm, Op, Result, WorldConfig, ANY_SOURCE, ANY_TAG};
use std::time::Duration;

fn cfg(size: usize) -> WorldConfig {
    WorldConfig::new(size).with_watchdog(Some(Duration::from_millis(50)))
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Bug 1: rank 0 broadcasts while everyone else reduces. Both calls
/// happen to return, so only the checker notices.
fn mismatched_collectives(comm: &mut Comm) -> Result<()> {
    if comm.rank() == 0 {
        comm.bcast(Some(&[1.0f64]), 0)?;
    } else {
        comm.reduce(&[1.0f64], Op::Sum, 0)?;
    }
    Ok(())
}

/// Bug 2: a synchronous-send ring — every rank ssends right before
/// receiving from the left, so all of them block forever.
fn ssend_ring(comm: &mut Comm) -> Result<u64> {
    let right = (comm.rank() + 1) % comm.size();
    let left = (comm.rank() + comm.size() - 1) % comm.size();
    comm.ssend(&[comm.rank() as u64], right, 0)?;
    let (v, _) = comm.recv::<u64>(left, 0)?;
    Ok(v[0])
}

/// Bug 3: rank 0 combines two wildcard receives order-dependently
/// (`a*10 + b`), so the answer depends on which message matches first.
fn racy_fan_in(comm: &mut Comm) -> Result<u64> {
    if comm.rank() == 0 {
        comm.barrier()?;
        let (a, _) = comm.recv::<u64>(ANY_SOURCE, ANY_TAG)?;
        let (b, _) = comm.recv::<u64>(ANY_SOURCE, ANY_TAG)?;
        Ok(a[0] * 10 + b[0])
    } else {
        if comm.rank() == 1 {
            comm.charge_flops(1.0e9); // rank 1's send leaves later
        }
        comm.send(&[comm.rank() as u64], 0, 0)?;
        comm.barrier()?;
        Ok(0)
    }
}

/// Bug 4: a send nobody receives and an isend request dropped without a
/// wait — both invisible at runtime, both flagged at finalize.
fn leaky_finalize(comm: &mut Comm) -> Result<()> {
    if comm.rank() == 0 {
        comm.send(&[9.0f64, 9.0], 1, 42)?;
        let _dropped = comm.isend(&[1u8], 1, 43)?;
    }
    Ok(())
}

fn main() {
    banner("1. mismatched collectives");
    let checked = check_world(cfg(2), mismatched_collectives);
    print!("{}", checked.report.render());

    banner("2. synchronous-send ring deadlock");
    let checked = check_world(cfg(3), ssend_ring);
    print!("{}", checked.report.render());

    banner("3. message race (confirmed by perturbed delivery)");
    let checked = check_world_confirm(cfg(3), racy_fan_in, &(1..=16).collect::<Vec<u64>>());
    print!("{}", checked.report.render());

    banner("4. finalize-time leaks");
    let checked = check_world(cfg(2), leaky_finalize);
    print!("{}", checked.report.render());
    println!("\nthe same report, machine-readable:");
    println!("{}", checked.report.to_json());

    println!(
        "\nlesson: a parallel program that produces the right answer on one\n\
         run can still be wrong — correctness tools check the *protocol*,\n\
         not one lucky schedule."
    );
}
