//! The example quiz question of §IV-B, played out end to end: two MPI
//! programs with different scaling profiles, a second user who wants one of
//! your nodes, and the co-scheduling consequences of each choice.
//!
//! ```text
//! cargo run --release --example terrible_twins
//! ```

use pdc_suite::cluster::cosched::{coschedule, JobProfile};
use pdc_suite::cluster::MachineModel;
use pdc_suite::datagen::{asteroid_catalog, random_range_queries};
use pdc_suite::modules::module4::{run_range_queries, Engine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: reproduce the two speedup panels of Figure 1 with real module
    // workloads (20 of 32 cores, as in the quiz).
    let catalog = asteroid_catalog(100_000, 11);
    let queries = random_range_queries(400, 0.05, 12);
    println!("Figure 1 — speedup of your two programs (20 of 32 cores):");
    println!("cores | Program 1 (R-tree, memory-bound) | Program 2 (brute force, compute-bound)");
    for p in [1usize, 4, 8, 12, 16, 20] {
        let rt = run_range_queries(&catalog, &queries, p, Engine::RTree, 1)?;
        let bf = run_range_queries(&catalog, &queries, p, Engine::BruteForce, 1)?;
        let rt1 = run_range_queries(&catalog, &queries, 1, Engine::RTree, 1)?;
        let bf1 = run_range_queries(&catalog, &queries, 1, Engine::BruteForce, 1)?;
        println!(
            "{p:>5} | {:>32.2} | {:>38.2}",
            rt1.sim_time / rt.sim_time,
            bf1.sim_time / bf.sim_time
        );
    }

    // Step 2: another user (running a memory-bound job) asks to share one
    // of your nodes. Which program do you co-locate them with?
    let m = MachineModel::cluster_node();
    let yours_mem = JobProfile::memory_bound("Program 1 (memory-bound)", 16, 12.0e9);
    let yours_cpu = JobProfile::compute_bound("Program 2 (compute-bound)", 16, 16.0e9);
    let theirs = JobProfile::memory_bound("their job", 16, 12.0e9);

    println!("\nThe other user's job is memory-bound. Your options:");
    let a = coschedule(&yours_mem, &theirs, &m);
    println!(
        "  share node 1 (Program 1): your slowdown {:.2}x, theirs {:.2}x   <- terrible twins",
        a.slowdown_a, a.slowdown_b
    );
    let b = coschedule(&yours_cpu, &theirs, &m);
    println!(
        "  share node 2 (Program 2): your slowdown {:.2}x, theirs {:.2}x   <- the right answer",
        b.slowdown_a, b.slowdown_b
    );
    println!(
        "\nQuiz answer: Program 2 / Compute Node 2 — CPU cores are space-shared,\n\
         so the contended resource is memory bandwidth; pair the bandwidth-hungry\n\
         newcomer with the program that barely uses it."
    );
    Ok(())
}
