//! The Module 1 deadlock clinic: the same ring-exchange program run under
//! the eager and rendezvous protocols, plus the three standard fixes.
//!
//! The runtime's watchdog converts the classic hang into a reported error,
//! so the lesson is observable without killing the process.
//!
//! ```text
//! cargo run --release --example deadlock_clinic
//! ```

use pdc_suite::modules::module1::{ring_step, RingVariant};
use pdc_suite::mpi::{Error, World, WorldConfig};
use std::time::Duration;

fn try_ring(variant: RingVariant, eager_threshold: usize) -> Result<Vec<u64>, Error> {
    let cfg = WorldConfig::new(4)
        .with_eager_threshold(eager_threshold)
        .with_watchdog(Some(Duration::from_millis(50)));
    World::run(cfg, move |comm| ring_step(comm, variant)).map(|out| out.values)
}

fn main() {
    println!("ring exchange on 4 ranks: everyone sends right, receives from the left\n");

    println!("eager protocol (messages are buffered):");
    match try_ring(RingVariant::NaiveBlocking, usize::MAX) {
        Ok(v) => println!("  naive blocking ring completed: {v:?}"),
        Err(e) => println!("  unexpected failure: {e}"),
    }

    println!("\nrendezvous protocol (every send waits for its receive):");
    match try_ring(RingVariant::NaiveBlocking, 0) {
        Ok(_) => println!("  naive blocking ring completed (?!)"),
        Err(Error::Deadlock(info)) => {
            println!("  naive blocking ring DEADLOCKED — detected by the watchdog");
            for line in info.render().lines() {
                println!("    {line}");
            }
        }
        Err(e) => println!("  unexpected failure: {e}"),
    }

    println!("\nthe three fixes, still under rendezvous:");
    for (name, variant) in [
        ("parity-shifted ordering", RingVariant::ParityShifted),
        ("nonblocking isend/wait ", RingVariant::Nonblocking),
        ("combined sendrecv      ", RingVariant::SendRecv),
    ] {
        match try_ring(variant, 0) {
            Ok(v) => println!("  {name}: completed: {v:?}"),
            Err(e) => println!("  {name}: failed: {e}"),
        }
    }

    println!(
        "\nlesson: whether `MPI_Send` blocks is a protocol decision, not a\n\
         program-text one — correct programs must not rely on buffering."
    );
}
