//! Workspace-level property tests: invariants that span crates.

use pdc_suite::datagen::uniform_points;
use pdc_suite::modules::module3::{run_distribution_sort, BucketStrategy, InputDist};
use pdc_suite::modules::module5::{run_kmeans, sequential_kmeans, CommOption};
use pdc_suite::spatial::{KdTree, RTree, Rect};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn distribution_sort_is_correct_for_any_shape(
        ranks in 1usize..8,
        n_per in 1usize..2000,
        seed in 0u64..500,
        exponential in any::<bool>(),
        histogram in any::<bool>(),
    ) {
        let dist = if exponential { InputDist::Exponential } else { InputDist::Uniform };
        let strategy = if histogram {
            BucketStrategy::Histogram { bins: 64 }
        } else {
            BucketStrategy::EqualWidth
        };
        let rep = run_distribution_sort(n_per, ranks, dist, strategy, seed)
            .expect("sort never fails");
        prop_assert!(rep.sorted_ok, "output must be globally sorted");
        prop_assert_eq!(
            rep.bucket_sizes.iter().sum::<usize>(),
            n_per * ranks,
            "no element may be lost or duplicated"
        );
    }

    #[test]
    fn rtree_range_query_equals_kdtree_for_random_boxes(
        n in 1usize..800,
        seed in 0u64..200,
        x0 in 0.0f64..100.0, y0 in 0.0f64..100.0,
        w in 0.0f64..60.0, h in 0.0f64..60.0,
    ) {
        let pts = uniform_points(n, 2, 0.0, 100.0, seed);
        let entries: Vec<([f64; 2], u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| ([p[0], p[1]], i as u32))
            .collect();
        let rtree = RTree::bulk_load(entries.clone());
        let kdtree = KdTree::build(entries);
        let q = Rect::new([x0, y0], [x0 + w, y0 + h]);
        let (mut a, _) = rtree.range_query(&q);
        let (mut b, _) = kdtree.range_query(&q);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn distributed_kmeans_matches_sequential_for_any_partition(
        ranks in 1usize..7,
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let pts = uniform_points(120, 2, 0.0, 50.0, seed);
        let (seq_centroids, _, seq_iters) = sequential_kmeans(&pts, k, 1e-9);
        let rep = run_kmeans(&pts, k, ranks, CommOption::WeightedMeans, 1, 1e-9)
            .expect("kmeans runs");
        prop_assert_eq!(rep.iterations, seq_iters, "same trajectory length");
        for (a, b) in rep.centroids.iter().zip(&seq_centroids) {
            prop_assert!((a - b).abs() < 1e-6, "centroid drift: {} vs {}", a, b);
        }
    }

    #[test]
    fn simulated_makespan_never_beats_the_critical_path(
        p in 1usize..10,
        flops in 1.0e6f64..1.0e10,
    ) {
        use pdc_suite::mpi::World;
        // Every rank does `flops` work: the makespan can never be below the
        // single-rank kernel time (nothing can compress the critical path).
        let out = World::run_simple(p, move |comm| {
            comm.charge_flops(flops);
            Ok(comm.sim_time())
        }).expect("runs");
        let single = flops / 16.0e9;
        prop_assert!(out.sim_time >= single * 0.999999);
        for &t in &out.values {
            prop_assert!(t >= single * 0.999999);
        }
    }
}
