//! Every module's default communication pattern under the `pdc-check`
//! correctness checker.
//!
//! This is the static-analysis acceptance gate: each of the eight core
//! modules (plus the spatial- and cluster-integration paths) must come
//! back with **zero violations** when its per-rank body runs under
//! instrumentation. Warnings are allowed — e.g. Module 1's `ANY_SOURCE`
//! exercise and Module 3's wildcard-probe exchange legitimately use
//! wildcard receives whose results are order-independent.

use pdc_check::{check_world, check_world_confirm};
use pdc_cluster::PlacementPolicy;
use pdc_datagen::{asteroid_catalog, gaussian_mixture, random_range_queries, uniform_points};
use pdc_modules::module1::{random_comm_rank, ring_step, RingVariant};
use pdc_modules::module2::{distance_matrix_rank, Access};
use pdc_modules::module3::{distribution_sort_rank, BucketStrategy, InputDist};
use pdc_modules::module4::{range_queries_rank, Engine};
use pdc_modules::module5::{kmeans_rank, CommOption};
use pdc_modules::module6::{sequential_stencil, stencil_rank, HaloVariant};
use pdc_modules::module7::{local_scores, top_k, top_k_rank, TopKStrategy};
use pdc_modules::module8::{self_join_rank, sequential_self_join, JoinMethod};
use pdc_modules::stencil2d::stencil2d_rank;
use pdc_mpi::{dims_create, Op, WorldConfig};

#[test]
fn module1_ring_fixes_run_clean() {
    for variant in [
        RingVariant::ParityShifted,
        RingVariant::Nonblocking,
        RingVariant::SendRecv,
    ] {
        let checked = check_world(WorldConfig::new(5), move |comm| ring_step(comm, variant));
        let values = checked.expect_clean(&format!("module 1 ring ({variant:?})"));
        // Every rank received its left neighbour's id.
        for (rank, &got) in values.iter().enumerate() {
            assert_eq!(got, ((rank + 4) % 5) as u64, "{variant:?}");
        }
    }
}

#[test]
fn module1_random_communication_runs_clean() {
    // The named-source protocol is fully deterministic; the ANY_SOURCE
    // variant deliberately uses wildcards (that is the exercise), so it
    // may carry race *warnings* but no violations.
    let exact = check_world(WorldConfig::new(6), |comm| {
        random_comm_rank(comm, 3, 42, false)
    });
    let exact_sum: u64 = exact.expect_clean("module 1 exact-source").iter().sum();

    let wild = check_world(WorldConfig::new(6), |comm| {
        random_comm_rank(comm, 3, 42, true)
    });
    let wild_sum: u64 = wild.expect_clean("module 1 ANY_SOURCE").iter().sum();
    assert_eq!(exact_sum, wild_sum, "both protocols deliver the same data");
}

#[test]
fn wildcard_idioms_survive_perturbed_delivery() {
    // The two deliberate wildcard patterns in the seed modules are
    // order-independent by construction: perturbed re-execution must not
    // upgrade their race warnings to violations.
    let wild = check_world_confirm(
        WorldConfig::new(5),
        |comm| random_comm_rank(comm, 3, 42, true),
        &[1, 2, 3, 4],
    );
    assert!(wild.report.is_clean(), "{}", wild.report.render());

    let sort = check_world_confirm(
        WorldConfig::new(4),
        |comm| distribution_sort_rank(comm, 150, InputDist::Uniform, BucketStrategy::EqualWidth, 3),
        &[1, 2, 3],
    );
    assert!(sort.report.is_clean(), "{}", sort.report.render());
}

#[test]
fn module2_distance_matrix_runs_clean() {
    let points = uniform_points(120, 2, 0.0, 100.0, 3);
    let mut checksums = Vec::new();
    for access in [Access::RowWise, Access::Tiled { tile: 16 }] {
        let pts = points.clone();
        let checked = check_world(WorldConfig::new(4), move |comm| {
            distance_matrix_rank(comm, &pts, access)
        });
        let values = checked.expect_clean("module 2 distance matrix");
        checksums.push(values[0]);
    }
    assert!(
        (checksums[0] - checksums[1]).abs() < 1e-6 * checksums[0].abs(),
        "access order must not change the checksum: {checksums:?}"
    );
}

#[test]
fn module3_distribution_sort_runs_clean() {
    for strategy in [
        BucketStrategy::EqualWidth,
        BucketStrategy::Histogram { bins: 32 },
    ] {
        let checked = check_world(WorldConfig::new(4), move |comm| {
            distribution_sort_rank(comm, 200, InputDist::Exponential, strategy, 7)
        });
        let values = checked.expect_clean(&format!("module 3 sort ({strategy:?})"));
        assert!(values.iter().all(|&(_, sorted)| sorted), "{strategy:?}");
        let total: usize = values.iter().map(|&(n, _)| n).sum();
        assert_eq!(total, 800, "{strategy:?}: no record lost in the shuffle");
    }
}

#[test]
fn module4_range_queries_run_clean_on_every_engine() {
    let catalog = asteroid_catalog(1500, 11);
    let queries = random_range_queries(24, 0.25, 12);
    let mut matches = Vec::new();
    for engine in [Engine::BruteForce, Engine::RTree, Engine::KdTree] {
        let (cat, qs) = (catalog.clone(), queries.clone());
        let checked = check_world(WorldConfig::new(4), move |comm| {
            range_queries_rank(comm, &cat, &qs, engine)
        });
        let values = checked.expect_clean(&format!("module 4 range queries ({engine:?})"));
        matches.push(values[0].0);
    }
    assert!(
        matches.iter().all(|&m| m == matches[0]),
        "all engines agree: {matches:?}"
    );
}

#[test]
fn module5_kmeans_runs_clean_on_both_comm_options() {
    let points = gaussian_mixture(240, 2, 3, 100.0, 1.0, 5).points;
    let mut inertias = Vec::new();
    for option in [CommOption::WeightedMeans, CommOption::ExplicitAssignment] {
        let pts = points.clone();
        let checked = check_world(WorldConfig::new(4), move |comm| {
            kmeans_rank(comm, &pts, 3, option, 1e-9)
        });
        let values = checked.expect_clean(&format!("module 5 k-means ({option:?})"));
        inertias.push(values[0].1);
    }
    assert!(
        (inertias[0] - inertias[1]).abs() < 1e-6 * inertias[0].max(1e-12),
        "both comm options converge to the same clustering: {inertias:?}"
    );
}

#[test]
fn module6_stencil_runs_clean_on_both_variants() {
    let reference: f64 = sequential_stencil(4 * 25, 12).iter().sum();
    for variant in [HaloVariant::BlockingFirst, HaloVariant::Overlapped] {
        let checked = check_world(WorldConfig::new(4), move |comm| {
            let u = stencil_rank(comm, 25, 12, variant)?;
            let local: f64 = u.iter().sum();
            let total = comm.reduce(&[local], Op::Sum, 0)?;
            Ok(total.map(|t| t[0]).unwrap_or(0.0))
        });
        let values = checked.expect_clean(&format!("module 6 stencil ({variant:?})"));
        assert!(
            (values[0] - reference).abs() < 1e-9,
            "{variant:?}: {} vs {reference}",
            values[0]
        );
    }
}

#[test]
fn module7_top_k_runs_clean_on_every_strategy() {
    let (n_per, ranks, k, seed) = (500, 4, 10, 9);
    let mut all = Vec::new();
    for r in 0..ranks {
        all.extend(local_scores(n_per, r, seed));
    }
    let reference = top_k(&all, k);
    for strategy in [
        TopKStrategy::GatherAll,
        TopKStrategy::LocalPrune,
        TopKStrategy::TreeMerge,
    ] {
        let checked = check_world(WorldConfig::new(ranks), move |comm| {
            top_k_rank(comm, n_per, k, strategy, seed)
        });
        let values = checked.expect_clean(&format!("module 7 top-k ({strategy:?})"));
        for (a, b) in values[0].iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{strategy:?}: {a} vs {b}");
        }
    }
}

#[test]
fn module8_self_join_runs_clean_on_both_methods() {
    let points = uniform_points(400, 2, 0.0, 100.0, 13);
    let expected = sequential_self_join(&points, 3.0);
    for method in [JoinMethod::BruteForce, JoinMethod::Grid] {
        let pts = points.clone();
        let checked = check_world(WorldConfig::new(4), move |comm| {
            self_join_rank(comm, &pts, 3.0, method)
        });
        let values = checked.expect_clean(&format!("module 8 self-join ({method:?})"));
        assert_eq!(values[0].0, expected, "{method:?}");
    }
}

#[test]
fn stencil_2d_cart_topology_runs_clean() {
    // The spatial-integration path: a 2-d halo exchange over a Cartesian
    // topology, checked at two rank-grid shapes that must agree.
    let (gx, gy, iters) = (12, 8, 5);
    let mut checksums = Vec::new();
    for ranks in [2usize, 4] {
        let dims = dims_create(ranks, 2);
        let (pr, pc) = (dims[0], dims[1]);
        let checked = check_world(WorldConfig::new(ranks), move |comm| {
            let cart = comm.cart(&[pr, pc], &[false, false])?;
            let block = stencil2d_rank(comm, &cart, gx, gy, iters)?;
            let local: f64 = block.iter().sum();
            let total = comm.reduce(&[local], Op::Sum, 0)?;
            Ok(total.map(|t| t[0]).unwrap_or(0.0))
        });
        let values = checked.expect_clean(&format!("2-d stencil on {ranks} ranks"));
        checksums.push(values[0]);
    }
    assert!(
        (checksums[0] - checksums[1]).abs() < 1e-9,
        "rank-grid shape must not change the field: {checksums:?}"
    );
}

#[test]
fn rendezvous_stress_straddling_eager_threshold_runs_clean() {
    // Transport stress gate: eight ranks exchange payloads on both sides
    // of a deliberately tiny eager threshold (4 KiB) through every
    // point-to-point flavour. Sizes are in u64 elements, so 512 elements
    // sit exactly on the threshold, 511 stays eager, and 513 tips into
    // the rendezvous path.
    let sizes: [usize; 5] = [16, 511, 512, 513, 4096];
    let cfg = WorldConfig::new(8).with_eager_threshold(4096);
    let checked = check_world(cfg, move |comm| {
        let p = comm.size();
        let me = comm.rank();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let mut received = 0u64;

        // Parity-shifted blocking ring; ssend forces a rendezvous
        // handshake even for the payloads below the threshold.
        for (round, &n) in sizes.iter().enumerate() {
            let tag = round as u32;
            let data: Vec<u64> = (0..n as u64)
                .map(|i| me as u64 * 1_000_000 + u64::from(tag) * 10_000 + i)
                .collect();
            let mut buf = vec![0u64; n];
            if me % 2 == 0 {
                comm.ssend(&data, right, tag)?;
                comm.recv_into(&mut buf, left, tag)?;
            } else {
                comm.recv_into(&mut buf, left, tag)?;
                comm.ssend(&data, right, tag)?;
            }
            assert_eq!(buf[0], left as u64 * 1_000_000 + u64::from(tag) * 10_000);
            received += n as u64;
        }

        // Nonblocking ring: the isend completes only after the matching
        // receive drains it, so rendezvous-sized payloads must not jam.
        for (round, &n) in sizes.iter().enumerate() {
            let tag = 100 + round as u32;
            let data: Vec<u64> = vec![me as u64; n];
            let req = comm.isend(&data, right, tag)?;
            let (got, status) = comm.recv::<u64>(left, tag)?;
            comm.wait_send(req)?;
            assert_eq!(status.bytes, n * 8);
            assert!(got.iter().all(|&x| x == left as u64));
            received += n as u64;
        }

        // Full-ring sendrecv with payloads twice the threshold in both
        // directions (MPI_Sendrecv guarantees progress regardless).
        let n = 1024;
        let data: Vec<u64> = vec![me as u64; n];
        let (got, _) = comm.sendrecv::<u64, u64>(&data, right, 200, left, 200)?;
        assert!(got.iter().all(|&x| x == left as u64));
        received += n as u64;

        comm.barrier()?;
        Ok(received)
    });
    let values = checked.expect_clean("rendezvous stress straddling the eager threshold");
    let expected: u64 = sizes.iter().map(|&n| n as u64).sum::<u64>() * 2 + 1024;
    assert!(values.iter().all(|&r| r == expected), "{values:?}");
}

#[test]
fn multi_node_placement_runs_clean() {
    // The cluster-integration path: ranks spread over two simulated nodes
    // with round-robin placement (every halo edge crosses the network).
    let reference: f64 = sequential_stencil(4 * 30, 8).iter().sum();
    let cfg = WorldConfig::new(4)
        .on_nodes(2)
        .with_policy(PlacementPolicy::RoundRobin);
    let checked = check_world(cfg, |comm| {
        let u = stencil_rank(comm, 30, 8, HaloVariant::Overlapped)?;
        let local: f64 = u.iter().sum();
        let total = comm.reduce(&[local], Op::Sum, 0)?;
        Ok(total.map(|t| t[0]).unwrap_or(0.0))
    });
    let values = checked.expect_clean("multi-node overlapped stencil");
    assert!((values[0] - reference).abs() < 1e-9);
}
