//! Fault-tolerance properties across the modules: a drops-only fault plan
//! (no crashes) plus the retry policy must be *invisible* — every module
//! returns byte-identical results to its fault-free run, and the checker
//! must attribute the injected faults to the plan rather than report them
//! as application defects.

use pdc_check::check_world;
use pdc_datagen::gaussian_mixture;
use pdc_modules::module1::random_comm_rank;
use pdc_modules::module3::{distribution_sort_rank, BucketStrategy, InputDist};
use pdc_modules::module5::{kmeans_rank, CommOption};
use pdc_mpi::{FaultPlan, Op, RetryPolicy, WorldConfig};
use proptest::prelude::*;

/// A drops-only plan whose losses the retry policy must fully repair.
fn drops_only(seed: u64, drop_rate: f64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_drop_rate(drop_rate)
        .with_retry(RetryPolicy::default())
}

/// Run a module program fault-free and under the plan, both under the
/// checker; the values must match exactly and neither report may carry a
/// violation.
fn assert_drops_are_invisible<T, F>(what: &str, plan: FaultPlan, f: F)
where
    T: Send + PartialEq + std::fmt::Debug,
    F: Fn(&mut pdc_mpi::Comm) -> pdc_mpi::Result<T> + Send + Sync,
{
    let baseline = check_world(WorldConfig::new(4), &f);
    let faulty = check_world(WorldConfig::new(4).with_faults(plan), &f);
    let base_values = baseline.result.expect("fault-free run").values;
    let fault_values = faulty.result.expect("lossy run with retry").values;
    assert_eq!(
        base_values, fault_values,
        "{what}: drops+retry changed results"
    );
    assert!(
        baseline.report.is_clean(),
        "{what}: {}",
        baseline.report.render()
    );
    assert!(
        faulty.report.is_clean(),
        "{what}: injected drops misreported as defects\n{}",
        faulty.report.render()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn drops_with_retry_are_invisible_to_every_module(
        plan_seed in 0u64..1000,
        drop_rate in 0.05f64..0.4,
        data_seed in 0u64..100,
    ) {
        // Module 1: random communication with named receives.
        assert_drops_are_invisible(
            "module1",
            drops_only(plan_seed, drop_rate),
            move |comm| random_comm_rank(comm, 3, data_seed, false),
        );

        // Module 3: distribution sort (probe + wildcard exchange).
        assert_drops_are_invisible(
            "module3",
            drops_only(plan_seed, drop_rate),
            move |comm| {
                distribution_sort_rank(
                    comm,
                    300,
                    InputDist::Exponential,
                    BucketStrategy::Histogram { bins: 32 },
                    data_seed,
                )
            },
        );

        // Module 5: k-means (scatter, broadcast, allreduce).
        let pts = gaussian_mixture(200, 2, 3, 100.0, 1.0, data_seed).points;
        assert_drops_are_invisible(
            "module5",
            drops_only(plan_seed, drop_rate),
            move |comm| kmeans_rank(comm, &pts, 3, CommOption::WeightedMeans, 1e-6),
        );
    }
}

#[test]
fn injected_drops_land_in_the_report_fault_section() {
    // Total loss without retry: the sends demonstrably injected faults,
    // and the checker files them under `faults`, not violations.
    let plan = FaultPlan::seeded(8)
        .with_drop_rate(0.5)
        .with_retry(RetryPolicy::default());
    let checked = check_world(WorldConfig::new(4).with_faults(plan), |comm| {
        let peer = comm.size() - 1 - comm.rank();
        let req = comm.isend(&[comm.rank() as u64], peer, 1)?;
        let (v, _) = comm.recv::<u64>(peer, 1)?;
        comm.wait_all_sends(vec![req])?;
        comm.allreduce(&v, Op::Sum)
    });
    checked.result.expect("run succeeds");
    assert!(checked.report.is_clean(), "{}", checked.report.render());
    assert!(
        !checked.report.faults.is_empty(),
        "a 50% drop rate over this much traffic must inject something"
    );
    let rendered = checked.report.render();
    assert!(rendered.contains("injected"), "{rendered}");
    assert!(
        rendered.contains("deliberate, not an application defect"),
        "{rendered}"
    );
}

#[test]
fn a_crashed_rank_is_reported_as_a_fault_not_a_deadlock() {
    // The watchdog/poison audit, end to end: a rank that dies by plan and
    // peers that error out with `RankFailed` must never be written up as
    // a deadlock, and the crash lands in the report's fault section with
    // its schedule spelled out.
    let plan = FaultPlan::seeded(6).crash_rank(1, 0.0);
    let checked = check_world(WorldConfig::new(3).with_faults(plan), |comm| {
        comm.allreduce(&[comm.rank() as u64], Op::Sum)
    });
    match checked.result {
        Err(pdc_mpi::Error::RankFailed { rank, .. }) => assert_eq!(rank, 1),
        other => panic!("expected RankFailed, got {other:?}"),
    }
    assert!(
        checked.report.is_clean(),
        "injected crash misreported:\n{}",
        checked.report.render()
    );
    let rendered = checked.report.render();
    assert!(
        rendered.contains("rank 1 crashed at simulated time"),
        "pinned fault text: {rendered}"
    );
    assert!(
        rendered.contains("scheduled by the fault plan"),
        "pinned fault text: {rendered}"
    );
    assert!(
        !checked
            .report
            .violations
            .iter()
            .any(|f| f.kind == pdc_check::FindingKind::Deadlock),
        "a typed rank failure is not a deadlock:\n{rendered}"
    );
}
