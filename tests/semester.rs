//! End-to-end integration: a full "semester" — every module run in the
//! scaffolded order on one dataset family, with the cross-module lessons
//! asserted on the results.

use pdc_suite::datagen::{
    asteroid_catalog, gaussian_mixture, random_range_queries, uniform_points,
};
use pdc_suite::modules::module1::{ping_pong, random_comm_with_any_source, ring, RingVariant};
use pdc_suite::modules::module2::{run_distance_matrix, Access};
use pdc_suite::modules::module3::{run_distribution_sort, BucketStrategy, InputDist};
use pdc_suite::modules::module4::{run_range_queries, Engine};
use pdc_suite::modules::module5::{run_kmeans, CommOption};

#[test]
fn the_full_module_sequence_runs_in_order() {
    // Module 1: communication basics.
    let pp = ping_pong(10, 4096).expect("module 1 ping-pong");
    assert!(pp.sim_latency_per_round > 0.0);
    let ring = ring(8, RingVariant::Nonblocking, 0).expect("module 1 ring");
    assert_eq!(ring.len(), 8);
    let rc = random_comm_with_any_source(8, 4, 99).expect("module 1 random");
    assert!(rc.messages > 0);

    // Module 2: distance matrix, tiled.
    let pts = uniform_points(256, 90, 0.0, 1.0, 1);
    let m2 = run_distance_matrix(&pts, 8, Access::Tiled { tile: 64 }, 1).expect("module 2");
    assert!(m2.checksum > 0.0);
    assert!(m2.primitives.contains(&"MPI_Scatter".to_string()));
    assert!(m2.primitives.contains(&"MPI_Reduce".to_string()));

    // Module 3: sort with the histogram fix.
    let m3 = run_distribution_sort(
        10_000,
        8,
        InputDist::Exponential,
        BucketStrategy::Histogram { bins: 256 },
        1,
    )
    .expect("module 3");
    assert!(m3.sorted_ok);
    assert!(m3.imbalance < 1.5);

    // Module 4: indexed range queries.
    let cat = asteroid_catalog(20_000, 1);
    let qs = random_range_queries(100, 0.1, 2);
    let m4 = run_range_queries(&cat, &qs, 8, Engine::RTree, 1).expect("module 4");
    assert!(m4.total_matches > 0);

    // Module 5: k-means.
    let blobs = gaussian_mixture(2_000, 2, 4, 100.0, 1.0, 3).points;
    let m5 = run_kmeans(&blobs, 4, 8, CommOption::WeightedMeans, 1, 1e-9).expect("module 5");
    assert!(m5.iterations >= 1);
    assert!(m5.inertia.is_finite());
}

#[test]
fn scaffolding_lessons_compose_across_modules() {
    // The compute-bound module scales better than the memory-bound ones —
    // the through-line of modules 2-4 (outcome 10 of Table I).
    let pts = uniform_points(512, 90, 0.0, 1.0, 5);
    let m2_eff = {
        let t1 = run_distance_matrix(&pts, 1, Access::Tiled { tile: 256 }, 1)
            .expect("p=1")
            .sim_time;
        let t16 = run_distance_matrix(&pts, 16, Access::Tiled { tile: 256 }, 1)
            .expect("p=16")
            .sim_time;
        t1 / t16 / 16.0
    };
    let cat = asteroid_catalog(50_000, 7);
    let qs = random_range_queries(200, 0.05, 8);
    let m4_eff = {
        let t1 = run_range_queries(&cat, &qs, 1, Engine::RTree, 1)
            .expect("p=1")
            .sim_time;
        let t16 = run_range_queries(&cat, &qs, 16, Engine::RTree, 1)
            .expect("p=16")
            .sim_time;
        t1 / t16 / 16.0
    };
    assert!(
        m2_eff > m4_eff,
        "compute-bound efficiency {m2_eff:.2} must beat memory-bound {m4_eff:.2}"
    );
}

#[test]
fn module_reports_serialize_for_grading_scripts() {
    // Course tooling consumes the reports as JSON.
    let pts = uniform_points(64, 8, 0.0, 1.0, 9);
    let rep = run_distance_matrix(&pts, 4, Access::RowWise, 1).expect("runs");
    let json = serde_json::to_string(&rep).expect("serializes");
    assert!(json.contains("\"checksum\""));
    let back: pdc_suite::modules::module2::DistanceMatrixReport =
        serde_json::from_str(&json).expect("roundtrips");
    assert_eq!(back, rep);
}
