//! Schedule exploration: every core module's per-rank body, executed
//! under 16 different deterministic-scheduler seeds.
//!
//! The virtual-rank backend (`docs/scheduler.md`) makes every legal
//! interleaving reproducible from a seed. This gate sweeps the seeds and
//! asserts what the modules promise:
//!
//! * **result determinism** — all eight `*_rank` bodies return
//!   byte-identical values under every seed (wildcard receives included:
//!   their reductions are order-independent by construction);
//! * **zero new checker findings** — `pdc-check` comes back with no
//!   violations under any schedule, exactly as it does in thread mode
//!   (`tests/checker.rs`);
//! * **replay** — the same seed reproduces the same checker event log
//!   bit-for-bit, and one seed's full log is pinned as a golden file;
//! * **mode equality** — virtual-rank and thread-per-rank worlds return
//!   equal payloads for Modules 1/3/5.

use pdc_check::check_world;
use pdc_datagen::{asteroid_catalog, gaussian_mixture, random_range_queries, uniform_points};
use pdc_modules::module1::{random_comm_rank, ring_step, RingVariant};
use pdc_modules::module2::{distance_matrix_rank, Access};
use pdc_modules::module3::{distribution_sort_rank, BucketStrategy, InputDist};
use pdc_modules::module4::{range_queries_rank, Engine};
use pdc_modules::module5::{kmeans_rank, CommOption};
use pdc_modules::module6::{stencil_rank, HaloVariant};
use pdc_modules::module7::{top_k_rank, TopKStrategy};
use pdc_modules::module8::{self_join_rank, JoinMethod};
use pdc_mpi::{CheckEvent, CheckMode, Comm, Op, Result, World, WorldConfig};

/// Seeds of the sweep.
const SEEDS: std::ops::Range<u64> = 0..16;

/// Worker-pool bound: small enough that batches genuinely interleave.
const WORKERS: usize = 2;

fn virtual_cfg(ranks: usize, seed: u64) -> WorldConfig {
    WorldConfig::virtual_ranks(ranks, WORKERS).with_sched_seed(seed)
}

/// Run one module body under every seed through the checker; assert no
/// violations and byte-identical (Debug-rendered) results across seeds.
fn sweep<T, F>(name: &str, ranks: usize, body: F)
where
    T: Send + std::fmt::Debug,
    F: Fn(&mut Comm) -> Result<T> + Send + Sync + Copy,
{
    let mut rendered: Option<String> = None;
    for seed in SEEDS {
        let checked = check_world(virtual_cfg(ranks, seed), body);
        assert!(
            checked.report.is_clean(),
            "{name} seed {seed}: new checker findings under this schedule\n{}",
            checked.report.render()
        );
        let values = checked
            .result
            .unwrap_or_else(|e| panic!("{name} seed {seed}: run failed: {e}"))
            .values;
        let this = format!("{values:?}");
        match &rendered {
            None => rendered = Some(this),
            Some(first) => assert_eq!(
                first, &this,
                "{name} seed {seed}: results diverged from seed {}",
                SEEDS.start
            ),
        }
    }
}

#[test]
fn module1_random_comm_is_seed_invariant() {
    sweep("module1", 6, |comm| random_comm_rank(comm, 3, 42, true));
}

#[test]
fn module2_distance_matrix_is_seed_invariant() {
    sweep("module2", 4, |comm| {
        let points = uniform_points(120, 2, 0.0, 100.0, 3);
        distance_matrix_rank(comm, &points, Access::RowWise)
    });
}

#[test]
fn module3_distribution_sort_is_seed_invariant() {
    sweep("module3", 4, |comm| {
        distribution_sort_rank(
            comm,
            200,
            InputDist::Exponential,
            BucketStrategy::Histogram { bins: 32 },
            7,
        )
    });
}

#[test]
fn module4_range_queries_are_seed_invariant() {
    sweep("module4", 4, |comm| {
        let catalog = asteroid_catalog(600, 11);
        let queries = random_range_queries(12, 0.25, 12);
        range_queries_rank(comm, &catalog, &queries, Engine::KdTree)
    });
}

#[test]
fn module5_kmeans_is_seed_invariant() {
    sweep("module5", 4, |comm| {
        let points = gaussian_mixture(240, 2, 3, 100.0, 1.0, 5).points;
        kmeans_rank(comm, &points, 3, CommOption::WeightedMeans, 1e-9)
    });
}

#[test]
fn module6_stencil_is_seed_invariant() {
    sweep("module6", 4, |comm| {
        let u = stencil_rank(comm, 25, 12, HaloVariant::Overlapped)?;
        let local: f64 = u.iter().sum();
        let total = comm.reduce(&[local], Op::Sum, 0)?;
        Ok(total.map(|t| t[0]).unwrap_or(0.0))
    });
}

#[test]
fn module7_top_k_is_seed_invariant() {
    sweep("module7", 4, |comm| {
        top_k_rank(comm, 500, 10, TopKStrategy::TreeMerge, 9)
    });
}

#[test]
fn module8_self_join_is_seed_invariant() {
    sweep("module8", 4, |comm| {
        let points = uniform_points(400, 2, 0.0, 100.0, 13);
        self_join_rank(comm, &points, 3.0, JoinMethod::Grid)
    });
}

/// Render per-rank checker event logs into a stable, diffable text form.
/// `CheckEvent` derives `Debug` but not `Serialize`; the golden file pins
/// the Debug rendering, one event per line, grouped by rank.
fn render_event_log(events: &[Vec<CheckEvent>]) -> String {
    let mut out = String::new();
    for (rank, log) in events.iter().enumerate() {
        out.push_str(&format!("== rank {rank} ({} events)\n", log.len()));
        for e in log {
            out.push_str(&format!("{e:?}\n"));
        }
    }
    out
}

fn golden_run() -> (Vec<u64>, String) {
    let cfg = virtual_cfg(4, 7).with_check(CheckMode::Record);
    let (result, events) =
        World::run_with_check(cfg, |comm| ring_step(comm, RingVariant::ParityShifted));
    let out = result.expect("golden ring runs");
    (out.values, render_event_log(&events))
}

/// Same seed ⇒ bit-identical event log, pinned against the committed
/// golden file. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test sched_explore golden` after an
/// intentional change to the modules or the checker's instrumentation.
#[test]
fn golden_event_log_replays_bit_identically() {
    let (values_a, log_a) = golden_run();
    let (values_b, log_b) = golden_run();
    assert_eq!(values_a, values_b, "same seed ⇒ same results");
    assert_eq!(log_a, log_b, "same seed ⇒ bit-identical event log");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/sched_event_log.txt"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &log_a).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden event log missing — regenerate with \
         UPDATE_GOLDEN=1 cargo test --test sched_explore golden",
    );
    assert_eq!(
        golden, log_a,
        "event log diverged from the pinned schedule (seed 7); if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Modules 1/3/5: the virtual-rank backend returns the same payloads as
/// thread mode.
#[test]
fn virtual_and_thread_mode_payloads_match() {
    fn both<T, F>(name: &str, ranks: usize, body: F)
    where
        T: Send + std::fmt::Debug,
        F: Fn(&mut Comm) -> Result<T> + Send + Sync + Copy,
    {
        let virt = World::run(virtual_cfg(ranks, 1), body).expect("virtual world");
        let thread = World::run(WorldConfig::new(ranks), body).expect("thread world");
        assert_eq!(
            format!("{:?}", virt.values),
            format!("{:?}", thread.values),
            "{name}: backends disagree"
        );
    }
    both("module1", 6, |comm| random_comm_rank(comm, 3, 42, false));
    both("module3", 4, |comm| {
        distribution_sort_rank(comm, 150, InputDist::Uniform, BucketStrategy::EqualWidth, 3)
    });
    both("module5", 4, |comm| {
        let points = gaussian_mixture(240, 2, 3, 100.0, 1.0, 5).points;
        kmeans_rank(comm, &points, 3, CommOption::ExplicitAssignment, 1e-9)
    });
}
