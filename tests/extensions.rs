//! Integration tests for the future-work extensions: latency hiding,
//! top-k, and sub-communicators — exercised through the umbrella crate the
//! way a downstream user would.

use pdc_suite::modules::module6::{
    run_stencil, run_stencil_field, sequential_stencil, HaloVariant,
};
use pdc_suite::modules::module7::{local_scores, run_top_k, top_k, TopKStrategy};
use pdc_suite::mpi::{Op, World};
use proptest::prelude::*;

#[test]
fn stencil_overlap_is_a_pure_optimization() {
    // Same numbers, strictly less simulated time on multi-node runs.
    let blocking = run_stencil(20_000, 8, 30, HaloVariant::BlockingFirst, 2).expect("blocking");
    let overlapped = run_stencil(20_000, 8, 30, HaloVariant::Overlapped, 2).expect("overlapped");
    assert_eq!(
        blocking.checksum, overlapped.checksum,
        "bit-identical results"
    );
    assert!(overlapped.sim_time < blocking.sim_time);
}

#[test]
fn topk_and_subcomm_compose() {
    // Split the world into two teams; each team computes its own top-3 via
    // a sub-communicator reduction of maxima, then the world agrees on the
    // global maximum.
    let out = World::run_simple(8, |comm| {
        let team = (comm.rank() / 4) as u32;
        let mut sc = comm.split(team, comm.rank() as i64)?;
        let scores = local_scores(1000, comm.rank(), 5);
        let local_max = scores.iter().cloned().fold(f64::MIN, f64::max);
        let team_max = comm.sub_allreduce(&mut sc, &[local_max], Op::Max)?[0];
        let world_max = comm.allreduce(&[local_max], Op::Max)?[0];
        Ok((team_max, world_max))
    })
    .expect("runs");
    let world_max = out.values[0].1;
    for &(team_max, wm) in &out.values {
        assert_eq!(wm, world_max, "world max agreed everywhere");
        assert!(team_max <= world_max);
    }
    assert!(
        out.values.iter().any(|&(tm, wm)| tm == wm),
        "one team holds the max"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stencil_matches_sequential_for_any_shape(
        ranks in 1usize..6,
        n_per in 1usize..40,
        iters in 0usize..25,
        overlapped in any::<bool>(),
    ) {
        let variant = if overlapped { HaloVariant::Overlapped } else { HaloVariant::BlockingFirst };
        let field = run_stencil_field(n_per, ranks, iters, variant).expect("stencil runs");
        let reference = sequential_stencil(n_per * ranks, iters);
        prop_assert_eq!(field.len(), reference.len());
        for (a, b) in field.iter().zip(&reference) {
            prop_assert!((a - b).abs() < 1e-12, "{} vs {}", a, b);
        }
    }

    #[test]
    fn topk_strategies_always_agree(
        ranks in 1usize..6,
        n_per in 1usize..500,
        k in 1usize..30,
        seed in 0u64..100,
    ) {
        let mut all = Vec::new();
        for r in 0..ranks {
            all.extend(local_scores(n_per, r, seed));
        }
        let reference = top_k(&all, k);
        for strategy in [TopKStrategy::GatherAll, TopKStrategy::LocalPrune, TopKStrategy::TreeMerge] {
            let rep = run_top_k(n_per, ranks, k, strategy, seed).expect("runs");
            prop_assert_eq!(rep.top.len(), reference.len(), "{:?}", strategy);
            for (a, b) in rep.top.iter().zip(&reference) {
                prop_assert!((a - b).abs() < 1e-12, "{:?}: {} vs {}", strategy, a, b);
            }
        }
    }
}
