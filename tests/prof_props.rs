//! Structural invariants of the profiler, over randomized workloads:
//!
//! 1. the critical path's length never exceeds the makespan, and is never
//!    shorter than any single rank's busy time (a path that skipped real
//!    work would "explain" less time than one rank provably spent);
//! 2. the path's segments tile `[0, length]` without gaps or overlaps;
//! 3. for every (phase, rank) cell of the flat profile, compute + wait
//!    equals the cell's total span time — the profiler never invents or
//!    loses time while attributing it.

use pdc_mpi::{Op, WorldConfig};
use pdc_prof::clinic::{imbalanced_stencil, ClinicConfig};
use pdc_prof::{profile_world, Profile};
use proptest::prelude::*;

const EPS: f64 = 1e-6;

fn assert_profile_invariants(what: &str, p: &Profile) {
    // Critical path vs makespan and busy times.
    let len = p.critical_path.length;
    prop_assert_ok(
        len <= p.makespan * (1.0 + EPS) + EPS,
        &format!(
            "{what}: critical path {len} exceeds makespan {}",
            p.makespan
        ),
    );
    for rc in &p.rank_counters {
        prop_assert_ok(
            len + EPS >= rc.busy_time * (1.0 - EPS),
            &format!(
                "{what}: critical path {len} shorter than rank {} busy time {}",
                rc.rank, rc.busy_time
            ),
        );
    }

    // Segments tile [0, length]: contiguous, non-overlapping, exhaustive.
    let segs = &p.critical_path.segments;
    if !segs.is_empty() {
        prop_assert_ok(
            segs[0].start.abs() < EPS,
            &format!("{what}: path starts at {} not 0", segs[0].start),
        );
        for w in segs.windows(2) {
            prop_assert_ok(
                (w[0].end - w[1].start).abs() < EPS,
                &format!(
                    "{what}: gap/overlap between segments: {} -> {}",
                    w[0].end, w[1].start
                ),
            );
        }
        let last = segs.last().expect("non-empty").end;
        prop_assert_ok(
            (last - len).abs() < EPS * len.max(1.0),
            &format!("{what}: path ends at {last}, length {len}"),
        );
    }

    // Per-cell time conservation: compute + wait == attributed span time.
    for cell in &p.phase_ranks {
        let total = cell.span_total();
        prop_assert_ok(
            (cell.compute_time + cell.wait_time - total).abs() <= EPS * total.max(1.0),
            &format!(
                "{what}: phase {} rank {}: compute {} + wait {} != total {total}",
                cell.phase, cell.rank, cell.compute_time, cell.wait_time
            ),
        );
    }

    // Per-rank: the sum of that rank's cells equals its busy time.
    for rc in &p.rank_counters {
        let cells: f64 = p
            .phase_ranks
            .iter()
            .filter(|c| c.rank == rc.rank)
            .map(|c| c.span_total())
            .sum();
        prop_assert_ok(
            (cells - rc.busy_time).abs() <= EPS * rc.busy_time.max(1.0),
            &format!(
                "{what}: rank {} cells sum {cells} != busy {}",
                rc.rank, rc.busy_time
            ),
        );
    }
}

/// Panicking assert helper shared by all cases (a panic inside a proptest
/// case is reported with the minimized input, same as `prop_assert!`).
fn prop_assert_ok(cond: bool, msg: &str) {
    assert!(cond, "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn clinic_profiles_conserve_time(
        ranks in 2usize..6,
        iters in 1usize..6,
        slow_seed in 0usize..100,
        slow_factor in 1.0f64..4.0,
    ) {
        let cfg = ClinicConfig {
            ranks,
            iters,
            n_per_rank: 8 * 1024,
            slow_rank: slow_seed % ranks,
            slow_factor,
        };
        let profiled = imbalanced_stencil(&cfg).expect("clinic runs");
        assert_profile_invariants("clinic", &profiled.profile);
    }

    #[test]
    fn collective_mix_profiles_conserve_time(
        ranks in 2usize..6,
        payload in 1usize..512,
        rounds in 1usize..4,
    ) {
        let profiled = profile_world(WorldConfig::new(ranks), move |comm| {
            let mut acc = 0.0f64;
            for round in 0..rounds {
                comm.phase_begin("kernel");
                comm.charge_kernel(1e5 * (comm.rank() + 1) as f64, 1e6);
                comm.phase_end();
                comm.phase_begin("collect");
                let data = vec![comm.rank() as f64; payload];
                let sum = comm.allreduce(&data, Op::Sum)?;
                acc += sum[0] + round as f64;
                comm.phase_end();
            }
            comm.barrier()?;
            Ok(acc)
        })
        .expect("mix runs");
        assert_profile_invariants("collective mix", &profiled.profile);
    }
}
