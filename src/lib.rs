//! # pdc-suite — umbrella crate
//!
//! Re-exports every crate of the workspace under one roof so the examples
//! and integration tests (and downstream users who want everything) can
//! depend on a single package.
//!
//! See the individual crates for the real APIs:
//!
//! * [`mpi`] — the message-passing runtime ([`pdc_mpi`])
//! * [`check`] — the MPI correctness checker ([`pdc_check`])
//! * [`lint`] — the static communication analyzer ([`pdc_lint`])
//! * [`cluster`] — machine model, scheduler, contention ([`pdc_cluster`])
//! * [`cachesim`] — cache simulator ([`pdc_cachesim`])
//! * [`spatial`] — R-tree / kd-tree / quad-tree ([`pdc_spatial`])
//! * [`datagen`] — dataset generators ([`pdc_datagen`])
//! * [`modules`] — the five pedagogic modules ([`pdc_modules`])
//! * [`pedagogy`] — outcomes, audits, quiz statistics ([`pdc_pedagogy`])
//! * [`prof`] — profiler and wait-state analysis ([`pdc_prof`])

pub use pdc_cachesim as cachesim;
pub use pdc_check as check;
pub use pdc_cluster as cluster;
pub use pdc_datagen as datagen;
pub use pdc_lint as lint;
pub use pdc_modules as modules;
pub use pdc_mpi as mpi;
pub use pdc_pedagogy as pedagogy;
pub use pdc_prof as prof;
pub use pdc_spatial as spatial;
