//! Offline shim for the `serde` crate.
//!
//! The real serde is a zero-copy streaming framework; this workspace only
//! ever derives `Serialize`/`Deserialize` on plain structs and enums and
//! round-trips them through `serde_json` strings, so the shim collapses
//! the design to a value tree: [`Serialize`] renders `self` into a
//! [`Value`], [`Deserialize`] rebuilds `Self` from one, and the vendored
//! `serde_json` prints/parses `Value` as JSON text. The derive macros in
//! `serde_derive` generate impls against exactly this surface, using the
//! same externally-tagged enum representation as upstream so the JSON
//! shape matches what real serde would emit.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};

/// The JSON-shaped data model every (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative JSON integer.
    U64(u64),
    /// Negative JSON integer.
    I64(i64),
    /// JSON number with a fractional part or exponent.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view, coercing any of the three number shapes.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned view of an integer-valued number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Signed view of an integer-valued number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::I64(n) => Some(*n),
            Value::F64(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Object member lookup used by derived code: a missing key reads as
    /// `null` so `Option` fields tolerate omitted members.
    pub fn field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A value of the wrong JSON type was found.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.type_name()))
    }

    /// An enum tag did not name any variant of the target type.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type renderable into a [`Value`].
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// A type rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("boolean", v))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // The workspace derives Deserialize on a few static reference
        // tables whose fields are `&'static str`; leaking the handful of
        // short strings a round-trip rebuilds is deliberate and bounded.
        Ok(Box::leak(String::from_value(v)?.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($len:literal: $($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if arr.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, found array of {}", $len, arr.len())));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1: A.0);
impl_tuple!(2: A.0, B.1);
impl_tuple!(3: A.0, B.1, C.2);
impl_tuple!(4: A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(usize, f64)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [Some(1u32), None, Some(3)];
        assert_eq!(
            <[Option<u32>; 3]>::from_value(&arr.to_value()).unwrap(),
            arr
        );
        let set: BTreeSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        assert_eq!(BTreeSet::from_value(&set.to_value()).unwrap(), set);
    }

    #[test]
    fn integers_keep_fidelity() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
    }

    #[test]
    fn missing_field_reads_null() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.field("a"), &Value::U64(1));
        assert_eq!(obj.field("b"), &Value::Null);
        assert_eq!(Option::<u64>::from_value(obj.field("b")).unwrap(), None);
    }
}
