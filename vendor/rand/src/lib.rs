//! Offline shim for the `rand` crate.
//!
//! Provides a seeded [`rngs::StdRng`] (xoshiro256++ expanded from the seed
//! with SplitMix64), the [`Rng`]/[`SeedableRng`] traits, `gen_range` over
//! primitive ranges, and the [`distributions::Distribution`] trait that the
//! companion `rand_distr` shim builds on. Deterministic for a given seed,
//! which is the only property the workspace's generators and tests rely on
//! — the stream differs from upstream `rand`'s ChaCha-based `StdRng`.

/// Sampling from random distributions.
pub mod distributions {
    use crate::Rng;

    /// A type that can produce values of `T` given a source of randomness.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Concrete generator types.
pub mod rngs {
    use crate::{Rng, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ with
    /// SplitMix64 state expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Random value of a supported primitive type (`bool`, integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

/// Types `Rng::gen` can produce directly from 64 random bits.
pub trait Standard {
    /// Derive a value from raw bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for i64 {
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo reduction: the bias is ≤ span/2^64, immaterial for
                // the test-scale spans this workspace draws.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..8);
            assert!((5..8).contains(&i));
            let j = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&j));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
