//! Offline shim for the `criterion` crate.
//!
//! Provides just enough surface for the workspace's `harness = false`
//! benches to compile and run: [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of statistical
//! sampling it times a small fixed number of iterations and prints the
//! mean, which keeps `cargo bench` usable for eyeballing relative cost
//! without the statistics machinery.

use std::time::Instant;

/// Number of timed iterations per benchmark (upstream samples adaptively).
const ITERS: u32 = 3;

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier, as upstream renders it.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Per-benchmark timing handle passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, keeping its output alive so it is not optimized out.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Upstream tunes the sample count; the shim times a fixed count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: R) {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        routine(&mut b);
        println!(
            "{}/{}: {:.1} µs/iter",
            self.name,
            id,
            b.nanos_per_iter / 1_000.0
        );
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.name, routine);
        self
    }

    /// Benchmark a closure that borrows `input` under `id`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.name, |b| routine(b, input));
        self
    }

    /// End the group (upstream flushes reports here).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
