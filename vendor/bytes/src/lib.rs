//! Offline shim for the `bytes` crate.
//!
//! The workspace builds in a hermetic container with no crates.io access,
//! so `vendor/` carries minimal, API-compatible implementations of the
//! handful of external crates the code uses. This one provides [`Bytes`]
//! (a cheaply cloneable immutable byte buffer) and [`BytesMut`] (an
//! append-only builder), which is all the message runtime needs for
//! payloads.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, immutable, contiguous byte buffer.
///
/// Backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that freezing a
/// [`BytesMut`] (or converting a `Vec<u8>`) transfers ownership of the
/// existing heap allocation instead of copying it — payload bytes are
/// copied exactly once, at encode time.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy an existing slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.data.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the builder empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying: the builder's
    /// allocation is handed to the `Arc` as-is.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_clone_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(&[1, 2]);
        b.extend_from_slice(&[3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        let c = frozen.clone();
        assert_eq!(c.len(), 3);
        assert_eq!(frozen, c);
    }

    #[test]
    fn conversions() {
        let b: Bytes = vec![9u8, 8].into();
        assert_eq!(b.as_ref(), &[9, 8]);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[5]).len(), 1);
    }
}
