//! Offline shim for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is used by this workspace, and only the
//! `unbounded`/`bounded` constructors with `send`, `try_recv`, and
//! `recv_timeout`. `std::sync::mpsc` provides all of that (its `Sender`
//! has been `Sync` since Rust 1.72), so the shim is a thin facade that
//! keeps the crossbeam names.

/// Multi-producer multi-consumer channels (facade over `std::sync::mpsc`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Sending half of a channel.
    pub enum Sender<T> {
        /// Backed by an unbounded `mpsc` channel.
        Unbounded(mpsc::Sender<T>),
        /// Backed by a bounded `mpsc` sync channel.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking if a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Pop a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Block for a message until the timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.rx.recv().map_err(|_| RecvTimeoutError::Disconnected)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { rx })
    }

    /// Create a bounded channel with capacity `cap` (must be ≥ 1: `mpsc`
    /// has no zero-capacity rendezvous channel, and this workspace never
    /// asks for one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "shim does not support zero-capacity channels");
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_recv_timeout() {
            let (tx, rx) = bounded(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send("hi").unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok("hi"));
        }

        #[test]
        fn senders_are_sync() {
            fn assert_sync<T: Sync>() {}
            assert_sync::<Sender<u64>>();
        }
    }
}
