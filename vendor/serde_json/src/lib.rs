//! Offline shim for the `serde_json` crate.
//!
//! Prints and parses JSON text to and from the vendored serde shim's
//! [`Value`] tree: [`to_string`], [`to_string_pretty`], and [`from_str`].
//! Numbers keep integer fidelity (integers parse as `u64`/`i64`, not
//! `f64`), floats print via Rust's shortest round-trip formatting, and
//! non-finite floats print as `null` exactly as upstream does.

pub use serde::{Deserialize, Error, Serialize, Value};

/// Result alias matching upstream's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serialize to human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Keep a fractional marker so the value re-parses as a float.
        out.push_str(&format!("{n:.1}"));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), out, indent, ('[', ']'), |item, out, ind| {
                write_value(item, out, ind)
            })
        }
        Value::Object(pairs) => {
            write_seq(pairs.iter(), out, indent, ('{', '}'), |(k, v), out, ind| {
                write_escaped(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(v, out, ind);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    brackets: (char, char),
    mut write_item: impl FnMut(I::Item, &mut String, Option<usize>),
) {
    out.push(brackets.0);
    let len = items.len();
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for (i, item) in items.enumerate() {
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        write_item(item, out, inner);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(brackets.1);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::custom("bad \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, 0.25f64), (2, 0.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.25],[2,0.5]]");
        assert_eq!(from_str::<Vec<(usize, f64)>>(&json).unwrap(), v);
    }

    #[test]
    fn value_parses_arbitrary_json() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null], "b": {"c": false}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str(r#"{"k":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn integer_fidelity_preserved() {
        let big = u64::MAX - 3;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
