//! Offline shim for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, [`collection::vec`], [`prelude::any`], [`prelude::Just`],
//! `prop_map`, [`prop_oneof!`], and `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics: each test function runs `cases` deterministic iterations,
//! seeded from the test name and case index, and failures panic with the
//! failing case's seed. No shrinking — a passing suite behaves identically
//! to upstream, a failing case reports its inputs via the assertion
//! message instead of a minimized example.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator handed to strategies; deterministic per (test, case).
pub type TestRng = StdRng;

/// How many cases a property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Drives the per-case loop of one `proptest!` function.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    name_hash: u64,
}

impl TestRunner {
    /// Runner for the named test under the given config.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRunner {
            cases: config.cases,
            name_hash: h,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Deterministic generator for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        StdRng::seed_from_u64(self.name_hash ^ ((case as u64) << 32 | 0x9e37))
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe view of [`Strategy`], for type-erased composition.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union over `alternatives` (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.alternatives.len());
        self.alternatives[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Acceptable length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s whose length is drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Types `any::<T>()` can generate.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Strategy returned by [`prelude::any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything tests conventionally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Any, BoxedStrategy, ProptestConfig,
        Strategy,
    };

    /// Strategy generating any value of `T`.
    pub fn any<T: crate::Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    /// Strategy that always yields a clone of `value`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> crate::Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut crate::TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Property-test entry point: declares `#[test]` functions whose arguments
/// are drawn from strategies for each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::TestRunner::new($cfg, stringify!($name));
            for __case in 0..runner.cases() {
                let mut __rng = runner.rng_for(__case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_vecs(n in 1usize..10, xs in crate::collection::vec(0i64..5, 2..6)) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|x| (0..5).contains(x)));
        }

        #[test]
        fn maps_and_tuples(pair in (0u64..4, 0u64..4).prop_map(|(x, y)| (x, x + y))) {
            let (a, b) = pair;
            prop_assert!(b >= a);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1i64), Just(2), 5i64..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let r = crate::TestRunner::new(ProptestConfig::with_cases(4), "t");
        let a: u64 = rand::Rng::next_u64(&mut r.rng_for(0));
        let b: u64 = rand::Rng::next_u64(&mut r.rng_for(0));
        let c: u64 = rand::Rng::next_u64(&mut r.rng_for(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
