//! Offline shim for the `rand_distr` crate: the [`Normal`] and [`Exp`]
//! distributions the data generators draw from, over the vendored `rand`
//! shim's [`Distribution`] trait.

pub use rand::distributions::Distribution;
use rand::Rng;

/// Parameter-validation error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Gaussian distribution, sampled with Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; the paired second variate is discarded so each draw
        // consumes a fixed amount of the stream.
        let u1 = loop {
            let u = rng.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = rng.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Exponential distribution with rate λ, sampled by inverse CDF.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// An exponential distribution with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.gen_f64();
        -(1.0 - u).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Exp::new(0.5).unwrap();
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!(d.sample(&mut rng) >= 0.0);
    }

    #[test]
    fn constructors_validate() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
    }
}
