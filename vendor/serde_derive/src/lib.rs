//! Offline shim for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored serde
//! shim's value-tree traits. The item is parsed directly from the
//! `proc_macro` token stream (no `syn`/`quote`, which are unavailable
//! offline): this supports exactly the shapes the workspace derives —
//! non-generic structs with named fields and non-generic enums with unit,
//! tuple, or struct variants. `#[serde(...)]` attributes are not
//! supported and generics are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[derive(Debug)]
struct Item {
    name: String,
    body: Body,
}

/// Skip `#[...]` attributes and `pub`/`pub(...)` visibility at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("vendored serde derive: expected {what}, found {other:?}"),
    }
}

/// Count of type slots in a tuple group: top-level commas + 1 (0 if empty).
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    commas + 1 - usize::from(trailing_comma)
}

/// Field names of a `{ ... }` group, skipping attributes, visibility,
/// and each field's type tokens.
fn named_field_names(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut i, "field name"));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("vendored serde derive: expected `:` after field, found {other:?}"),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

fn enum_variants(group: &proc_macro::Group) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "variant name");
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(named_field_names(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(tuple_arity(g))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "type name");
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde derive: generic type `{name}` is not supported");
        }
    }
    let body = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Struct(Fields::Named(named_field_names(g)))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::Struct(Fields::Tuple(tuple_arity(g)))
        }
        ("struct", _) => Body::Struct(Fields::Unit),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(enum_variants(g))
        }
        _ => panic!("vendored serde derive: cannot derive for `{kind} {name}`"),
    };
    Item { name, body }
}

fn named_to_value(fields: &[String], access_prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
}

fn named_from_value(name_path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value({src}.field(\"{f}\"))?"))
        .collect();
    format!("{name_path} {{ {} }}", inits.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => named_to_value(fields, "self."),
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                    ),
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let inner = named_to_value(fs, "*");
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(\
                             ::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),"
                        )
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(\
                             ::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
           fn to_value(&self) -> ::serde::Value {{ {body} }}\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let build = named_from_value(name, fields, "v");
            format!(
                "if v.as_object().is_none() {{\
                   return ::std::result::Result::Err(::serde::Error::expected(\"object\", v));\
                 }}\
                 ::std::result::Result::Ok({build})"
            )
        }
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", v))?;\
                 if arr.len() != {n} {{\
                   return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length\"));\
                 }}\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| {
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fs) => {
                        let build = named_from_value(&format!("{name}::{vname}"), fs, "inner");
                        Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({build}),"
                        ))
                    }
                    Fields::Tuple(1) => Some(format!(
                        "\"{vname}\" => ::std::result::Result::Ok(\
                         {name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{vname}\" => {{\
                               let arr = inner.as_array()\
                                 .ok_or_else(|| ::serde::Error::expected(\"array\", inner))?;\
                               if arr.len() != {n} {{\
                                 return ::std::result::Result::Err(\
                                   ::serde::Error::custom(\"wrong tuple variant length\"));\
                               }}\
                               ::std::result::Result::Ok({name}::{vname}({}))\
                             }},",
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(tag) = v.as_str() {{\
                   return match tag {{\
                     {unit}\
                     other => ::std::result::Result::Err(\
                       ::serde::Error::unknown_variant(other, \"{name}\")),\
                   }};\
                 }}\
                 if let ::std::option::Option::Some(pairs) = v.as_object() {{\
                   if pairs.len() == 1 {{\
                     let (tag, inner) = &pairs[0];\
                     return match tag.as_str() {{\
                       {data}\
                       other => ::std::result::Result::Err(\
                         ::serde::Error::unknown_variant(other, \"{name}\")),\
                     }};\
                   }}\
                 }}\
                 ::std::result::Result::Err(::serde::Error::expected(\"enum\", v))",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
           fn from_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\
         }}"
    )
}

/// Derive the vendored-serde `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("vendored serde derive: generated Serialize impl parses")
}

/// Derive the vendored-serde `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("vendored serde derive: generated Deserialize impl parses")
}
